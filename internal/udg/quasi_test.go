package udg

import (
	"testing"

	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/xrand"
)

func TestQuasiValidate(t *testing.T) {
	if err := PaperQuasiConfig(30).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []QuasiConfig{
		{N: -1, Field: geom.Square(100), RMin: 20, RMax: 30, PZone: 0.5},
		{N: 10, Field: geom.Square(100), RMin: 0, RMax: 30, PZone: 0.5},
		{N: 10, Field: geom.Square(100), RMin: 30, RMax: 20, PZone: 0.5},
		{N: 10, Field: geom.Square(100), RMin: 20, RMax: 30, PZone: 1.5},
		{N: 10, Field: geom.Square(100), RMin: 20, RMax: 30, PZone: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQuasiLinkRules(t *testing.T) {
	// Every edge must be within RMax; every pair within RMin must be an
	// edge.
	c := PaperQuasiConfig(80)
	inst, err := RandomQuasi(c, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rMin2 := c.RMin * c.RMin
	rMax2 := c.RMax * c.RMax
	g := inst.Graph
	for v := 0; v < 80; v++ {
		for u := v + 1; u < 80; u++ {
			d2 := inst.Positions[v].Dist2(inst.Positions[u])
			has := g.HasEdge(graph.NodeID(v), graph.NodeID(u))
			if d2 <= rMin2 && !has {
				t.Fatalf("pair %d-%d within RMin but not linked", v, u)
			}
			if d2 > rMax2 && has {
				t.Fatalf("pair %d-%d beyond RMax but linked", v, u)
			}
		}
	}
}

func TestQuasiZoneProbability(t *testing.T) {
	// With PZone = 0 the quasi graph equals the RMin disk graph; with
	// PZone = 1 it equals the RMax disk graph.
	base := PaperQuasiConfig(60)
	for _, pz := range []float64{0, 1} {
		c := base
		c.PZone = pz
		rng := xrand.New(11)
		inst, err := RandomQuasi(c, rng)
		if err != nil {
			t.Fatal(err)
		}
		r := c.RMin
		if pz == 1 {
			r = c.RMax
		}
		want := BuildBrute(inst.Positions, r)
		if !graph.Equal(inst.Graph, want) {
			t.Fatalf("PZone=%v: quasi graph differs from disk graph at radius %v", pz, r)
		}
	}
}

func TestQuasiDeterministic(t *testing.T) {
	c := PaperQuasiConfig(50)
	a, err := RandomQuasi(c, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomQuasi(c, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a.Graph, b.Graph) {
		t.Fatal("same seed produced different quasi graphs")
	}
}

func TestQuasiConnectedSampling(t *testing.T) {
	inst, err := RandomQuasiConnected(PaperQuasiConfig(60), xrand.New(17), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Graph.IsConnected() {
		t.Fatal("disconnected instance returned")
	}
}

func TestQuasiInvalidRejected(t *testing.T) {
	if _, err := RandomQuasi(QuasiConfig{N: 5, RMin: -1, RMax: 10}, xrand.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RandomQuasiConnected(QuasiConfig{N: 5, RMin: -1, RMax: 10}, xrand.New(1), 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}
