package udg

import (
	"sort"
	"sync"

	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/par"
)

// Parallel unit-disk construction. Build's grid pass is inherently
// parallel — every host's neighbor row depends only on the immutable grid
// and positions — but AddEdge serializes it through shared adjacency
// mutation. BuildParallel keeps the grid index and goes wide instead:
// workers claim disjoint node ranges and run grid queries into private
// buffers, a degree-count pass sizes one flat adjacency arena, and a fill
// pass writes each host's sorted row into its owned arena slot. The merge
// is deterministic by construction (rows are positional and sorted), so
// the result is graph.Equal to Build at every worker count — the
// differential tests in parallel_test.go pin that, along with Build ≡
// BuildBrute.

// buildParallelCutoff is the instance size below which BuildParallel
// simply calls Build: under ~2 blocks of nodes the pool setup costs more
// than the edges.
const buildParallelCutoff = 2 * par.Block

// BuildParallel is Build across a worker pool. workers <= 0 selects
// GOMAXPROCS; 1 (or a small instance) falls back to the sequential Build.
// Like Build, instances up to bitsetNodeLimit nodes get the dense bitset
// adjacency view.
func BuildParallel(positions []geom.Point, field geom.Rect, radius float64, workers int) *graph.Graph {
	n := len(positions)
	if workers = par.Workers(workers); workers <= 1 || n < buildParallelCutoff {
		return Build(positions, field, radius)
	}
	grid := geom.NewGrid(positions, field, radius)
	// Private per-goroutine query buffers: a worker drains many blocks, so
	// the pool hands each one a reusable buffer instead of allocating per
	// block.
	bufs := sync.Pool{New: func() any { s := make([]int, 0, 128); return &s }}

	// Pass 1: count each host's degree. Every worker writes only deg[v]
	// for v in its claimed ranges.
	deg := make([]int, n)
	par.For(n, workers, func(lo, hi int) {
		bp := bufs.Get().(*[]int)
		buf := *bp
		for v := lo; v < hi; v++ {
			buf = grid.Neighbors(v, buf[:0])
			deg[v] = len(buf)
		}
		*bp = buf
		bufs.Put(bp)
	})

	// Arena layout: off[v] is row v's start in the flat backing array.
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	arena := make([]graph.NodeID, off[n])
	adj := make([][]graph.NodeID, n)

	// Pass 2: re-run each query and fill the owned arena slot, sorted.
	// The grid visits cells in a fixed order, so the second query returns
	// the same multiset as the first; sorting fixes the row order to the
	// ascending invariant Build produces via AddEdge.
	par.For(n, workers, func(lo, hi int) {
		bp := bufs.Get().(*[]int)
		buf := *bp
		for v := lo; v < hi; v++ {
			buf = grid.Neighbors(v, buf[:0])
			row := arena[off[v]:off[v+1]]
			for i, u := range buf {
				row[i] = graph.NodeID(u)
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			// Full-capacity cap is safe here: rows are never appended to
			// by this package, and FromSortedAdjacency documents the
			// aliasing contract.
			adj[v] = row[:len(row):len(row)]
		}
		*bp = buf
		bufs.Put(bp)
	})

	g := graph.FromSortedAdjacency(adj)
	if n <= bitsetNodeLimit {
		g.EnableBitset()
	}
	return g
}
