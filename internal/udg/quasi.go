package udg

import (
	"fmt"

	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/xrand"
)

// Quasi unit-disk graphs — a standard refinement of the paper's ideal
// radio model. Real radios have no sharp range cutoff: links inside an
// inner radius are reliable, links beyond an outer radius impossible, and
// links in the transition zone exist probabilistically. The marking
// process and rules are purely graph-based, so they apply unchanged; the
// quasi model exercises them on topologies the ideal disk cannot produce
// (notably, non-monotone neighborhoods where a far host is connected
// while a nearer one is not).
//
// Note that the quasi model remains symmetric (one coin flip per pair),
// preserving the paper's undirected-graph assumption.

// QuasiConfig describes a quasi-UDG instance.
type QuasiConfig struct {
	N     int
	Field geom.Rect
	// RMin is the reliable radius: d <= RMin always links.
	RMin float64
	// RMax is the maximum radius: d > RMax never links.
	RMax float64
	// PZone is the link probability for RMin < d <= RMax.
	PZone float64
}

// PaperQuasiConfig returns a quasi configuration bracketing the paper's
// radius 25: reliable to 20, possible to 30, transition probability 0.5.
func PaperQuasiConfig(n int) QuasiConfig {
	return QuasiConfig{N: n, Field: geom.Square(100), RMin: 20, RMax: 30, PZone: 0.5}
}

// Validate reports configuration errors.
func (c QuasiConfig) Validate() error {
	if c.N < 0 {
		return fmt.Errorf("udg: negative host count %d", c.N)
	}
	if c.RMin <= 0 || c.RMax < c.RMin {
		return fmt.Errorf("udg: need 0 < RMin <= RMax, got %v, %v", c.RMin, c.RMax)
	}
	if c.PZone < 0 || c.PZone > 1 {
		return fmt.Errorf("udg: PZone %v outside [0, 1]", c.PZone)
	}
	return nil
}

// BuildQuasi constructs a quasi-UDG over the positions: pairs within RMin
// always link, pairs within (RMin, RMax] link with probability PZone, and
// farther pairs never link. The grid index prunes candidates by RMax.
func BuildQuasi(positions []geom.Point, c QuasiConfig, rng *xrand.RNG) *graph.Graph {
	g := graph.New(len(positions))
	if len(positions) == 0 {
		return g
	}
	grid := geom.NewGrid(positions, c.Field, c.RMax)
	rMin2 := c.RMin * c.RMin
	rMax2 := c.RMax * c.RMax
	buf := make([]int, 0, 64)
	for v := range positions {
		buf = grid.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u <= v {
				continue // one decision per unordered pair
			}
			d2 := positions[v].Dist2(positions[u])
			switch {
			case d2 <= rMin2:
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
			case d2 <= rMax2:
				if rng.Float64() < c.PZone {
					g.AddEdge(graph.NodeID(v), graph.NodeID(u))
				}
			}
		}
	}
	if len(positions) <= bitsetNodeLimit {
		g.EnableBitset()
	}
	return g
}

// RandomQuasi generates a quasi-UDG instance with uniform placement.
func RandomQuasi(c QuasiConfig, rng *xrand.RNG) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pos := RandomPositions(Config{N: c.N, Field: c.Field, Radius: c.RMax}, rng)
	g := BuildQuasi(pos, c, rng)
	return &Instance{
		Config:    Config{N: c.N, Field: c.Field, Radius: c.RMax},
		Positions: pos,
		Graph:     g,
	}, nil
}

// RandomQuasiConnected samples quasi instances until one is connected.
func RandomQuasiConnected(c QuasiConfig, rng *xrand.RNG, maxAttempts int) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxAttempts <= 0 {
		maxAttempts = 1000
	}
	for i := 0; i < maxAttempts; i++ {
		inst, err := RandomQuasi(c, rng)
		if err != nil {
			return nil, err
		}
		if inst.Graph.IsConnected() {
			return inst, nil
		}
	}
	return nil, ErrNoConnectedInstance
}
