package udg

import (
	"testing"

	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/xrand"
)

func TestBuildMatchesBrute(t *testing.T) {
	for _, n := range []int{0, 1, 2, 20, 150} {
		for _, r := range []float64{5, 25, 80} {
			cfg := Config{N: n, Field: geom.Square(100), Radius: r}
			rng := xrand.New(uint64(n)*31 + uint64(r))
			pos := RandomPositions(cfg, rng)
			fast := Build(pos, cfg.Field, r)
			brute := BuildBrute(pos, r)
			if !graph.Equal(fast, brute) {
				t.Fatalf("n=%d r=%v: grid build != brute build", n, r)
			}
		}
	}
}

func TestBuildSymmetric(t *testing.T) {
	cfg := PaperConfig(60)
	rng := xrand.New(5)
	inst, err := Random(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst.Graph.Edges(func(u, v graph.NodeID) {
		if !inst.Graph.HasEdge(v, u) {
			t.Fatalf("asymmetric edge %d-%d", u, v)
		}
	})
}

func TestBuildRespectsRadius(t *testing.T) {
	cfg := PaperConfig(80)
	rng := xrand.New(9)
	inst, err := Random(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	r2 := cfg.Radius * cfg.Radius
	n := inst.Graph.NumNodes()
	for v := 0; v < n; v++ {
		for u := v + 1; u < n; u++ {
			d2 := inst.Positions[v].Dist2(inst.Positions[u])
			has := inst.Graph.HasEdge(graph.NodeID(v), graph.NodeID(u))
			if has != (d2 <= r2) {
				t.Fatalf("edge %d-%d: has=%v dist2=%v r2=%v", v, u, has, d2, r2)
			}
		}
	}
}

func TestPaperConfig(t *testing.T) {
	c := PaperConfig(50)
	if c.N != 50 || c.Radius != 25 || c.Field != geom.Square(100) {
		t.Fatalf("PaperConfig = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{N: -1, Field: geom.Square(100), Radius: 25},
		{N: 10, Field: geom.Square(100), Radius: 0},
		{N: 10, Field: geom.Square(100), Radius: -5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := PaperConfig(40)
	a, err := Random(cfg, xrand.New(123))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg, xrand.New(123))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a.Graph, b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("same seed produced different positions at %d", i)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	cfg := PaperConfig(50)
	inst, err := RandomConnected(cfg, xrand.New(7), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Graph.IsConnected() {
		t.Fatal("RandomConnected returned a disconnected graph")
	}
}

func TestRandomConnectedExhaustsBudget(t *testing.T) {
	// With 2 hosts in a huge field and a tiny radius, connectivity is
	// effectively impossible; the sampler must give up cleanly.
	cfg := Config{N: 2, Field: geom.Square(1e6), Radius: 0.001}
	_, err := RandomConnected(cfg, xrand.New(1), 5)
	if err != ErrNoConnectedInstance {
		t.Fatalf("err = %v, want ErrNoConnectedInstance", err)
	}
}

func TestRandomConnectedInvalidConfig(t *testing.T) {
	if _, err := RandomConnected(Config{N: 3, Radius: 0}, xrand.New(1), 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPositionsInsideField(t *testing.T) {
	cfg := PaperConfig(200)
	pos := RandomPositions(cfg, xrand.New(77))
	for i, p := range pos {
		if !cfg.Field.Contains(p) {
			t.Fatalf("position %d outside field: %v", i, p)
		}
	}
}

func TestRebuild(t *testing.T) {
	cfg := PaperConfig(30)
	inst, err := RandomConnected(cfg, xrand.New(15), 100)
	if err != nil {
		t.Fatal(err)
	}
	before := inst.Graph.NumEdges()
	// Move every host to the same point: graph must become complete.
	for i := range inst.Positions {
		inst.Positions[i] = geom.Point{X: 50, Y: 50}
	}
	inst.Rebuild()
	if !inst.Graph.IsComplete() {
		t.Fatalf("co-located hosts must form a complete graph (edges %d -> %d)",
			before, inst.Graph.NumEdges())
	}
}

func TestZeroHosts(t *testing.T) {
	inst, err := Random(Config{N: 0, Field: geom.Square(100), Radius: 25}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumNodes() != 0 {
		t.Fatal("zero-host instance has nodes")
	}
}

func BenchmarkBuildGrid100(b *testing.B) {
	cfg := PaperConfig(100)
	pos := RandomPositions(cfg, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(pos, cfg.Field, cfg.Radius)
	}
}

func BenchmarkBuildBrute100(b *testing.B) {
	cfg := PaperConfig(100)
	pos := RandomPositions(cfg, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildBrute(pos, cfg.Radius)
	}
}
