package udg

import (
	"pacds/internal/geom"
	"pacds/internal/xrand"
)

// Clustered placement — an extension beyond the paper's uniform
// deployment. Real ad hoc deployments cluster around points of interest;
// CDS behaviour differs sharply between the dense cores (heavy pruning
// opportunity) and the sparse bridges between clusters (every connector
// is critical). ClusteredPositions places hosts around k uniformly chosen
// cluster centers with Gaussian scatter, clamped to the field.

// ClusterConfig parameterizes hotspot placement.
type ClusterConfig struct {
	// Clusters is the number of hotspots (k >= 1).
	Clusters int
	// Spread is the Gaussian standard deviation of scatter around a
	// hotspot center, in field units.
	Spread float64
}

// ClusteredPositions places c.N hosts: each host picks one of k hotspot
// centers uniformly and scatters around it.
func ClusteredPositions(c Config, cc ClusterConfig, rng *xrand.RNG) []geom.Point {
	k := cc.Clusters
	if k < 1 {
		k = 1
	}
	spread := cc.Spread
	if spread <= 0 {
		spread = c.Radius / 2
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: c.Field.MinX + rng.Float64()*c.Field.Width(),
			Y: c.Field.MinY + rng.Float64()*c.Field.Height(),
		}
	}
	pts := make([]geom.Point, c.N)
	for i := range pts {
		ctr := centers[rng.Intn(k)]
		pts[i] = c.Field.Clamp(ctr.Add(rng.NormFloat64()*spread, rng.NormFloat64()*spread))
	}
	return pts
}

// RandomClustered generates an instance with hotspot placement (not
// necessarily connected — sparse inter-cluster gaps are the point).
func RandomClustered(c Config, cc ClusterConfig, rng *xrand.RNG) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pos := ClusteredPositions(c, cc, rng)
	return &Instance{Config: c, Positions: pos, Graph: Build(pos, c.Field, c.Radius)}, nil
}

// RandomClusteredConnected samples clustered instances until one is
// connected, up to maxAttempts tries.
func RandomClusteredConnected(c Config, cc ClusterConfig, rng *xrand.RNG, maxAttempts int) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxAttempts <= 0 {
		maxAttempts = 1000
	}
	for i := 0; i < maxAttempts; i++ {
		inst, err := RandomClustered(c, cc, rng)
		if err != nil {
			return nil, err
		}
		if inst.Graph.IsConnected() {
			return inst, nil
		}
	}
	return nil, ErrNoConnectedInstance
}
