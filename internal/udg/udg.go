// Package udg constructs unit-disk graphs — the connectivity model the
// paper uses for ad hoc wireless networks. All hosts share one transmission
// radius r; hosts u and v are linked iff their Euclidean distance is at
// most r, which yields an undirected graph (paper Section 1).
//
// The paper's simulation places N hosts uniformly at random in a 100x100
// field with r = 25.
package udg

import (
	"errors"
	"fmt"

	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/xrand"
)

// Config describes a random unit-disk network instance.
type Config struct {
	N      int       // number of hosts
	Field  geom.Rect // deployment region
	Radius float64   // shared transmission radius
}

// PaperConfig returns the paper's simulation parameters for n hosts:
// 100x100 field, radius 25.
func PaperConfig(n int) Config {
	return Config{N: n, Field: geom.Square(100), Radius: 25}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 0 {
		return fmt.Errorf("udg: negative host count %d", c.N)
	}
	if c.Radius <= 0 {
		return fmt.Errorf("udg: non-positive radius %v", c.Radius)
	}
	if c.Field.Width() < 0 || c.Field.Height() < 0 {
		return errors.New("udg: inverted field rectangle")
	}
	return nil
}

// RandomPositions places c.N hosts uniformly at random in c.Field.
func RandomPositions(c Config, rng *xrand.RNG) []geom.Point {
	pts := make([]geom.Point, c.N)
	for i := range pts {
		pts[i] = geom.Point{
			X: c.Field.MinX + rng.Float64()*c.Field.Width(),
			Y: c.Field.MinY + rng.Float64()*c.Field.Height(),
		}
	}
	return pts
}

// bitsetNodeLimit bounds the instance sizes for which Build enables the
// graph's dense bitset adjacency view. The view costs Θ(N²/64) memory
// (2 MiB at the limit) and makes the Wu-Li subset kernels word-parallel;
// above the limit graphs stay on the allocation-free merge scans.
const bitsetNodeLimit = 4096

// Build constructs the unit-disk graph over the given positions with the
// given radius, using a uniform-grid index (O(N·k) for k average neighbors).
// Distance comparison is inclusive: d(u,v) <= radius links u and v.
// For instances up to bitsetNodeLimit nodes the graph's bitset adjacency
// view is enabled, so the marking/pruning kernels downstream run
// word-parallel.
func Build(positions []geom.Point, field geom.Rect, radius float64) *graph.Graph {
	g := graph.New(len(positions))
	if len(positions) == 0 {
		return g
	}
	grid := geom.NewGrid(positions, field, radius)
	buf := make([]int, 0, 64)
	for v := range positions {
		buf = grid.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	if len(positions) <= bitsetNodeLimit {
		g.EnableBitset()
	}
	return g
}

// BuildBrute is the O(N^2) reference construction, used to validate Build
// and BuildParallel. It applies the same bitset policy as Build (dense
// view for instances up to bitsetNodeLimit nodes) so differential tests
// compare identically-configured graphs and downstream kernels take the
// same dispatch path regardless of which constructor produced the graph.
func BuildBrute(positions []geom.Point, radius float64) *graph.Graph {
	g := graph.New(len(positions))
	r2 := radius * radius
	for v := range positions {
		for u := v + 1; u < len(positions); u++ {
			if positions[v].Dist2(positions[u]) <= r2 {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	if len(positions) <= bitsetNodeLimit {
		g.EnableBitset()
	}
	return g
}

// Instance is a generated network: host positions plus the induced
// unit-disk graph.
type Instance struct {
	Config    Config
	Positions []geom.Point
	Graph     *graph.Graph
}

// Random generates one random instance (not necessarily connected).
func Random(c Config, rng *xrand.RNG) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pos := RandomPositions(c, rng)
	return &Instance{Config: c, Positions: pos, Graph: Build(pos, c.Field, c.Radius)}, nil
}

// ErrNoConnectedInstance is returned when RandomConnected exhausts its
// attempt budget without sampling a connected topology.
var ErrNoConnectedInstance = errors.New("udg: could not sample a connected instance within the attempt budget")

// RandomConnected samples random instances until one is connected, up to
// maxAttempts tries. The marking process assumes a connected graph, so the
// graph-size experiments (paper Figure 10) sample connected instances; at
// the paper's density (r=25 in a 100x100 field) most instances with N >= 10
// are connected.
func RandomConnected(c Config, rng *xrand.RNG, maxAttempts int) (*Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxAttempts <= 0 {
		maxAttempts = 1000
	}
	for i := 0; i < maxAttempts; i++ {
		inst, err := Random(c, rng)
		if err != nil {
			return nil, err
		}
		if inst.Graph.IsConnected() {
			return inst, nil
		}
	}
	return nil, ErrNoConnectedInstance
}

// Rebuild recomputes the instance's graph from its current positions,
// e.g. after a mobility step has moved hosts.
func (in *Instance) Rebuild() {
	in.Graph = Build(in.Positions, in.Config.Field, in.Config.Radius)
}
