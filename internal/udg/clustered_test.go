package udg

import (
	"testing"

	"pacds/internal/geom"
	"pacds/internal/xrand"
)

func TestClusteredPositionsInField(t *testing.T) {
	cfg := PaperConfig(200)
	pos := ClusteredPositions(cfg, ClusterConfig{Clusters: 4, Spread: 10}, xrand.New(1))
	if len(pos) != 200 {
		t.Fatalf("positions = %d", len(pos))
	}
	for i, p := range pos {
		if !cfg.Field.Contains(p) {
			t.Fatalf("position %d outside field: %v", i, p)
		}
	}
}

func TestClusteredIsActuallyClustered(t *testing.T) {
	// Hosts scattered around 2 tight hotspots must have a much smaller
	// mean nearest-neighbor distance than a uniform deployment.
	cfg := PaperConfig(100)
	uniform := RandomPositions(cfg, xrand.New(5))
	clustered := ClusteredPositions(cfg, ClusterConfig{Clusters: 2, Spread: 5}, xrand.New(5))
	if meanNN(clustered) >= meanNN(uniform) {
		t.Fatalf("clustered meanNN %.2f not below uniform %.2f",
			meanNN(clustered), meanNN(uniform))
	}
}

func meanNN(pos []geom.Point) float64 {
	sum := 0.0
	for i, p := range pos {
		best := -1.0
		for j, q := range pos {
			if i == j {
				continue
			}
			d := p.Dist(q)
			if best < 0 || d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(pos))
}

func TestClusteredDefaults(t *testing.T) {
	cfg := PaperConfig(50)
	// Zero clusters and spread fall back to sane defaults.
	pos := ClusteredPositions(cfg, ClusterConfig{}, xrand.New(3))
	if len(pos) != 50 {
		t.Fatalf("positions = %d", len(pos))
	}
}

func TestRandomClustered(t *testing.T) {
	inst, err := RandomClustered(PaperConfig(60), ClusterConfig{Clusters: 3, Spread: 8}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.NumNodes() != 60 {
		t.Fatalf("nodes = %d", inst.Graph.NumNodes())
	}
	// Dense hotspots: average degree should be well above the uniform
	// deployment's at the same N.
	uni, err := Random(PaperConfig(60), xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.AverageDegree() <= uni.Graph.AverageDegree() {
		t.Fatalf("clustered avg degree %.1f not above uniform %.1f",
			inst.Graph.AverageDegree(), uni.Graph.AverageDegree())
	}
}

func TestRandomClusteredConnected(t *testing.T) {
	inst, err := RandomClusteredConnected(PaperConfig(60), ClusterConfig{Clusters: 2, Spread: 12},
		xrand.New(11), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Graph.IsConnected() {
		t.Fatal("disconnected instance returned")
	}
}

func TestRandomClusteredValidation(t *testing.T) {
	if _, err := RandomClustered(Config{N: 5, Radius: 0}, ClusterConfig{}, xrand.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RandomClusteredConnected(Config{N: 5, Radius: 0}, ClusterConfig{}, xrand.New(1), 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}
