// Async example: why the rule application must be serialized. Run the
// pruning rules as a fully asynchronous protocol — each host evaluates at
// a random time, unmark broadcasts arrive after random delays — and watch
// the generalized rules break the connected-dominating-set property while
// the original ID rules survive any amount of asynchrony.
//
//	go run ./examples/async
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	const trials = 30
	fmt.Println("asynchronous rule application, 50 hosts, 30 topologies per cell")
	fmt.Println("cells: fraction of runs whose final set is NOT a valid CDS")
	fmt.Println()
	fmt.Println("policy  delay=0  delay=0.5  delay=2.0")

	for _, p := range []pacds.Policy{pacds.ID, pacds.ND, pacds.EL2} {
		fmt.Printf("%-6v", p)
		for _, delay := range []float64{0, 0.5, 2} {
			violations := 0
			rng := pacds.NewRNG(2001 + uint64(p))
			for t := 0; t < trials; t++ {
				net, err := pacds.RandomConnectedNetwork(pacds.PaperNetworkConfig(50), rng, 2000)
				if err != nil {
					log.Fatal(err)
				}
				cfg := pacds.AsyncConfig{Policy: p, JitterSpan: 1, MeanDelay: delay, Seed: rng.Uint64()}
				var energy []float64
				if p.NeedsEnergy() {
					energy = make([]float64, 50)
					for i := range energy {
						energy[i] = float64(rng.IntRange(1, 10)) * 10
					}
				}
				r, err := pacds.RunAsync(net.Graph, cfg, energy)
				if err != nil {
					log.Fatal(err)
				}
				if r.Violation != nil {
					violations++
				}
			}
			fmt.Printf("  %6.0f%%", 100*float64(violations)/trials)
		}
		fmt.Println()
	}

	fmt.Println("\nThe ID rules' strict-minimum guards order every removal chain, so they")
	fmt.Println("tolerate arbitrary delays. The generalized ND/EL rules remove nodes")
	fmt.Println("unconditionally in their case 1 and race with in-flight unmarks — they")
	fmt.Println("need the serialized (slotted) execution the library uses by default.")
}
