// Routing example: reproduce the structure of the paper's Figure 2 — a
// gateway host's domain membership list and gateway routing table — and
// route packets host-to-host through the connected dominating set.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	// A random 40-host network at the paper's density (100x100 field,
	// radius 25).
	net, err := pacds.RandomConnectedNetwork(pacds.PaperNetworkConfig(40), pacds.NewRNG(7), 1000)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph

	// Compute the CDS under the degree-based policy (smallest sets).
	res, err := pacds.Compute(g, pacds.ND, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d hosts, %d links; %d gateway hosts: %v\n\n",
		g.NumNodes(), g.NumEdges(), res.NumGateways(), res.GatewayIDs())

	router, err := pacds.NewRouter(g, res.Gateway)
	if err != nil {
		log.Fatal(err)
	}

	// Show the first gateway's view: its domain membership list and the
	// first rows of its routing table (the paper's Figure 2b/2c).
	gw := res.GatewayIDs()[0]
	fmt.Printf("gateway %d domain membership list: %v\n", gw, router.MembershipList(gw))
	table, err := router.Table(gw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway %d routing table (%d entries, first 5 shown):\n", gw, len(table))
	fmt.Println("  gateway  dist  next  members")
	for i, e := range table {
		if i == 5 {
			break
		}
		fmt.Printf("  %7d  %4d  %4d  %v\n", e.Gateway, e.Dist, e.NextHop, e.Members)
	}

	// Route a few packets between non-gateway hosts: source -> source
	// gateway -> gateway subnetwork -> destination gateway -> destination.
	fmt.Println("\nsample routes (every intermediate host is a gateway):")
	pairs := [][2]pacds.NodeID{{0, 39}, {5, 31}, {12, 27}}
	for _, pair := range pairs {
		path, err := router.Route(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		stretch, err := router.Stretch(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d -> %2d: %v  (%d hops, stretch %.2f)\n",
			pair[0], pair[1], path, len(path)-1, stretch)
	}
}
