// Distributed example: run the marking process and the pruning rules as an
// actual message-passing protocol — HELLO beacons, neighbor-list
// exchanges, and gateway-status broadcasts — and confirm the hosts
// converge to exactly the centralized result, as the paper's locality
// argument promises.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	net, err := pacds.RandomConnectedNetwork(pacds.PaperNetworkConfig(60), pacds.NewRNG(11), 1000)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph
	fmt.Printf("network: %d hosts, %d links\n\n", g.NumNodes(), g.NumEdges())

	energy := make([]float64, g.NumNodes())
	rng := pacds.NewRNG(12)
	for i := range energy {
		energy[i] = float64(rng.IntRange(1, 10)) * 10
	}

	fmt.Println("policy  gateways  rounds  messages  deliveries  unmark-events  matches-centralized")
	for _, p := range pacds.Policies {
		gw, stats, err := pacds.RunDistributed(g, p, energy)
		if err != nil {
			log.Fatal(err)
		}
		want, err := pacds.Compute(g, p, energy)
		if err != nil {
			log.Fatal(err)
		}
		match := true
		count := 0
		for v := range gw {
			if gw[v] {
				count++
			}
			if gw[v] != want.Gateway[v] {
				match = false
			}
		}
		fmt.Printf("%-6v  %8d  %6d  %8d  %10d  %13d  %v\n",
			p, count, stats.Rounds, stats.Messages, stats.Deliveries, stats.StatusChanges, match)
	}

	fmt.Println("\nEvery host decided from 2-hop knowledge it received over the radio;")
	fmt.Println("no global state was consulted. Unmark events are serialized by ID slots.")
}
