// Traffic example: packet-level view of the paper's energy argument.
// Constant-bit-rate flows are routed through each policy's connected
// dominating set; forwarding energy is charged to the hosts that actually
// relay the packets. Energy-aware gateway selection keeps the relays
// rotating, so the first battery death comes later — with no abstract
// drain model in sight.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	const hosts = 30
	fmt.Printf("packet-level lifetime, %d hosts, %d CBR flows, tx .05 / rx .02 / idle .01\n\n",
		hosts, hosts/2)
	fmt.Println("policy  first-death  delivered  dropped  delivery%  mean-hops  gw-forwards")

	for _, p := range pacds.Policies {
		var death, delivered, dropped, forwards int
		var hops, ratio float64
		const trials = 5
		rng := pacds.NewRNG(404)
		for t := 0; t < trials; t++ {
			cfg := pacds.PaperTrafficConfig(hosts, p, rng.Uint64())
			m, err := pacds.RunTraffic(cfg)
			if err != nil {
				log.Fatal(err)
			}
			death += m.FirstDeathInterval
			delivered += m.Delivered
			dropped += m.Dropped
			forwards += m.GatewayForwards
			hops += m.MeanHops()
			ratio += m.DeliveryRatio()
		}
		fmt.Printf("%-6v  %11.1f  %9d  %7d  %8.1f%%  %9.2f  %11d\n",
			p, float64(death)/trials, delivered/trials, dropped/trials,
			100*ratio/trials, hops/trials, forwards/trials)
	}

	fmt.Println("\nGateway forwards concentrate on the backbone; EL1/EL2 spread that burden")
	fmt.Println("across charge-rich hosts, so the network's first death comes latest.")
}
