// Quickstart: build a small ad hoc network, run the Wu-Li marking process,
// and compare the gateway sets produced by each of the paper's pruning
// policies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	// A 12-node network shaped like the cluster in the paper's worked
	// example (Section 3.3): a dense cluster around hosts 2, 4 and 9, plus
	// a tail.
	g := pacds.FromEdges(12, [][2]pacds.NodeID{
		{2, 1}, {2, 3}, {2, 4}, {2, 5}, {2, 6}, {2, 7}, {2, 8}, {2, 9},
		{4, 1}, {4, 3}, {4, 9}, {4, 10}, {4, 11},
		{9, 5}, {9, 6}, {9, 7}, {9, 8}, {9, 10},
		{11, 0}, // tail host hanging off 11
	})
	fmt.Printf("network: %d hosts, %d links, connected=%v\n\n",
		g.NumNodes(), g.NumEdges(), g.IsConnected())

	// Step 1: the marking process. A host marks itself when two of its
	// neighbors are not directly connected.
	marked := pacds.Mark(g)
	fmt.Printf("marking process   -> %v\n", hostList(marked))

	// Step 2: prune with each policy. EL1/EL2 read energy levels; give
	// host 9 a low battery. The ID policy removes host 2 (smallest ID
	// among the mutually-covering gateways 2, 4, 9), but the energy-aware
	// policies remove the weak host 9 instead, relieving it of gateway
	// duty.
	energy := make([]float64, g.NumNodes())
	for i := range energy {
		energy[i] = 100
	}
	energy[9] = 30

	for _, p := range pacds.Policies {
		res, err := pacds.Compute(g, p, energy)
		if err != nil {
			log.Fatal(err)
		}
		if err := pacds.VerifyCDS(g, res.Gateway); err != nil {
			log.Fatalf("policy %v produced an invalid CDS: %v", p, err)
		}
		fmt.Printf("policy %-3v (%d gateways) -> %v\n", p, res.NumGateways(), res.GatewayIDs())
	}

	fmt.Println("\nAll five gateway sets verified as connected dominating sets.")
}

func hostList(set []bool) []int {
	out := []int{}
	for v, in := range set {
		if in {
			out = append(out, v)
		}
	}
	return out
}
