// Lifetime example: the paper's headline experiment in miniature. Run the
// lifetime simulation for each pruning policy under a premise-consistent
// gateway drain and show how energy-aware gateway selection (EL1/EL2)
// extends the time until the first host exhausts its battery.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	const (
		hosts  = 40
		trials = 10
		seed   = 2001
	)
	fmt.Printf("lifetime comparison: %d hosts, %d trials, constant per-gateway drain d=2, d'=1\n",
		hosts, trials)
	fmt.Println("policy  lifetime(intervals)  mean|G'|  residual-variance")

	for _, p := range pacds.Policies {
		cfg := pacds.PaperSimConfig(hosts, p, pacds.ConstantPerGWDrain{}, seed)
		var lifeSum, gwSum, varSum float64
		rng := pacds.NewRNG(seed)
		for t := 0; t < trials; t++ {
			c := cfg
			c.Seed = rng.Uint64()
			m, err := pacds.RunSim(c)
			if err != nil {
				log.Fatal(err)
			}
			lifeSum += float64(m.Intervals)
			gwSum += m.MeanGateways
			varSum += m.ResidualVariance
		}
		fmt.Printf("%-6v  %19.1f  %8.1f  %17.1f\n",
			p, lifeSum/trials, gwSum/trials, varSum/trials)
	}

	fmt.Println("\nEL1/EL2 rotate gateway duty toward high-energy hosts, so consumption")
	fmt.Println("stays balanced (low residual variance) and the first death comes later.")
}
