// Server example: run the cdsd CDS-computation service in-process, drive
// it with the typed client, and show the serving machinery at work — a
// cold compute, a cache hit for the repeated request, a fault-scenario
// query ("what does the surviving CDS look like under 10% loss?"), and
// the Prometheus metrics the service exposes.
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"pacds"
)

func main() {
	// Start the service on an ephemeral local port.
	srv := pacds.NewCDSServer(pacds.ServerConfig{Workers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("cdsd serving on %s\n\n", base)

	client := pacds.NewCDSClient(base, nil)
	ctx := context.Background()

	// A unit-disk topology on the paper's field, sent over the wire.
	netw, err := pacds.RandomConnectedNetwork(pacds.PaperNetworkConfig(60), pacds.NewRNG(7), 1000)
	if err != nil {
		log.Fatal(err)
	}
	spec := pacds.ServerGraphSpec{Nodes: netw.Graph.NumNodes()}
	netw.Graph.Edges(func(u, v pacds.NodeID) {
		spec.Edges = append(spec.Edges, [2]int{int(u), int(v)})
	})

	energy := make([]float64, 60)
	rng := pacds.NewRNG(8)
	for i := range energy {
		energy[i] = float64(rng.IntRange(1, 10)) * 10
	}

	// Cold request, then the identical request again: the second is
	// served from the canonical-digest LRU cache.
	req := pacds.ServerComputeRequest{Graph: spec, Policy: "EL2", Energy: energy}
	cold, err := client.Compute(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := client.Compute(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EL2 backbone: %d of %d hosts are gateways\n", cold.NumGateways, cold.Nodes)
	fmt.Printf("cold request cached=%v, repeated request cached=%v\n\n", cold.Cached, warm.Cached)

	// Ask the service to check a (deliberately broken) gateway set.
	verdict, err := client.Verify(ctx, pacds.ServerVerifyRequest{
		Graph: spec, Gateways: cold.Gateways[:1],
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verify of a 1-gateway set: valid=%v (%s)\n\n", verdict.Valid, verdict.Reason)

	// The opt-in fault field runs the hardened distributed protocol:
	// what does the surviving CDS look like under 10% message loss and
	// one host crash?
	faulty, err := client.Compute(ctx, pacds.ServerComputeRequest{
		Graph: spec, Policy: "ND",
		Faults: &pacds.ServerFaultSpec{Drop: 0.1, Seed: 5,
			Crashes: []pacds.ServerCrashSpec{{Node: 3, AtRound: 12}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under 10%% loss + 1 crash: %d gateways over %d surviving hosts, %d retransmissions\n\n",
		faulty.NumGateways, len(faulty.Alive), faulty.Retransmissions)

	// The metrics endpoint, filtered to the serving counters.
	text, err := client.MetricsText(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("metrics excerpt:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "cdsd_cache") || strings.HasPrefix(line, "cdsd_requests_total") {
			fmt.Println("  " + line)
		}
	}

	// Graceful drain, as SIGTERM would do in the daemon.
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained and stopped.")
}
