// Maintenance example: keep a connected dominating set alive across host
// mobility with localized message traffic (the paper's Section 2.2
// locality claim). Each interval, only hosts near a changed link
// transmit; the session's gateway set stays exactly equal to a fresh
// centralized computation.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	"pacds"
)

func main() {
	const hosts = 50
	net, err := pacds.RandomConnectedNetwork(pacds.PaperNetworkConfig(hosts), pacds.NewRNG(31), 1000)
	if err != nil {
		log.Fatal(err)
	}

	session, err := pacds.NewMaintenanceSession(net.Graph, pacds.ND, nil)
	if err != nil {
		log.Fatal(err)
	}
	bootstrap := session.Stats().Messages
	fmt.Printf("bootstrap: %d hosts, %d messages (full 3-phase protocol + rules)\n\n",
		hosts, bootstrap)
	fmt.Println("interval  link-events  marker-changes  msgs-this-interval  |G'|  matches-centralized")

	model := pacds.NewPaperMobility()
	rng := pacds.NewRNG(37)
	prevMsgs := session.Stats().Messages
	for step := 1; step <= 10; step++ {
		// Move hosts, diff the unit-disk topology into link events.
		old := net.Graph.Clone()
		model.Step(net.Positions, net.Config.Field, rng)
		net.Rebuild()
		var changes []pacds.EdgeChange
		old.Edges(func(u, v pacds.NodeID) {
			if !net.Graph.HasEdge(u, v) {
				changes = append(changes, pacds.EdgeChange{A: u, B: v, Up: false})
			}
		})
		net.Graph.Edges(func(u, v pacds.NodeID) {
			if !old.HasEdge(u, v) {
				changes = append(changes, pacds.EdgeChange{A: u, B: v, Up: true})
			}
		})

		markerChanges, err := session.ApplyChanges(changes)
		if err != nil {
			log.Fatal(err)
		}
		msgs := session.Stats().Messages - prevMsgs
		prevMsgs = session.Stats().Messages

		want, err := pacds.Compute(net.Graph, pacds.ND, nil)
		if err != nil {
			log.Fatal(err)
		}
		got := session.Gateways()
		match := true
		count := 0
		for v := range got {
			if got[v] {
				count++
			}
			if got[v] != want.Gateway[v] {
				match = false
			}
		}
		fmt.Printf("%8d  %11d  %14d  %18d  %4d  %v\n",
			step, len(changes), markerChanges, msgs, count, match)
	}

	fmt.Printf("\nA full protocol re-run costs >= %d messages per interval;\n", 3*hosts)
	fmt.Println("localized maintenance transmits only near the changed links.")
}
