# Development targets for pacds. `make verify` is the tier-1 gate every
# PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: all build test vet race verify bench fuzz clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-sensitive packages: the message-passing protocol layers and the
# concurrent serving subsystem.
race:
	$(GO) test -race ./internal/distributed/ ./internal/sim/ ./internal/server/

verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Short fuzz pass over the edge-list parser and encoder round-trip.
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 30s ./internal/graph/

clean:
	$(GO) clean ./...
