# Development targets for pacds. `make verify` is the tier-1 gate every
# PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: all build test vet race verify bench bench-quick fuzz clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-sensitive packages: the message-passing protocol layers, the
# concurrent serving subsystem, and the parallel experiment engine.
race:
	$(GO) test -race ./internal/distributed/ ./internal/sim/ ./internal/server/ ./internal/experiments/

verify: build vet test race

# Perf-focused benchmarks behind the numbers in README.md's Performance
# section. Writes the raw `go test -bench` stream to bench.out and a JSON
# summary (mean ns/op, allocs/op and reported metrics per benchmark) to
# BENCH_PR3.json.
BENCH_PATTERN ?= ApplyRulesFixpoint|CoverageKernels|SweepWorkers|Marking$$|RuleAblation$$
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | tee bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR3.json bench.out

# One-iteration smoke pass over every benchmark in the repository.
bench-quick:
	$(GO) test -bench . -benchtime 1x ./...

# Short fuzz pass over the edge-list parser and encoder round-trip.
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 30s ./internal/graph/

clean:
	$(GO) clean ./...
