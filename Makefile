# Development targets for pacds. `make verify` is the tier-1 gate every
# PR must keep green (see ROADMAP.md).

GO ?= go

.PHONY: all build test vet race verify cover bench bench-quick bench-sessions bench-check bench-server bench-server-check bench-compute bench-compute-check trace-demo profile profile-compute fuzz load chaos clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-sensitive packages: the message-passing protocol layers, the
# concurrent serving subsystem, the session manager (lock-striped shards,
# reaper, eviction), the parallel experiment engine, the load harness
# (whose workers share collectors and histograms), the resilience/chaos
# layers (breakers, token buckets, fault transports), the tracing ring
# (concurrent span commits racing /debug/traces readers), and the
# parallel compute pipeline (par worker primitive, speculative cds
# kernels, parallel udg builder — whose determinism property tests
# assert byte-identical output at every worker count under the racer).
race:
	$(GO) test -race ./internal/distributed/ ./internal/sim/ ./internal/server/ ./internal/topo/ ./internal/experiments/ ./internal/load/ ./internal/resilience/ ./internal/chaos/ ./internal/obs/ ./internal/par/ ./internal/cds/ ./internal/udg/

# Statement-coverage floors for the core pruning library, the serving
# subsystem, the load harness, and the resilience primitives. The floors
# sit ~5 points below current measurements (92.9 / 85.9 / 82.5 / 98.3);
# raise them as coverage grows, never lower them to admit a regression.
COVER_FLOOR_CDS        ?= 88
COVER_FLOOR_SERVER     ?= 80
COVER_FLOOR_LOAD       ?= 75
COVER_FLOOR_RESILIENCE ?= 85
COVER_FLOOR_TOPO       ?= 80
COVER_FLOOR_OBS        ?= 80
cover:
	@for spec in "./internal/cds/:$(COVER_FLOOR_CDS)" \
	             "./internal/server/:$(COVER_FLOOR_SERVER)" \
	             "./internal/load/:$(COVER_FLOOR_LOAD)" \
	             "./internal/resilience/:$(COVER_FLOOR_RESILIENCE)" \
	             "./internal/topo/:$(COVER_FLOOR_TOPO)" \
	             "./internal/obs/:$(COVER_FLOOR_OBS)"; do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		$(GO) test -coverprofile=cover.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "coverage $$pkg: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN {exit !(p >= f)}' || \
			{ echo "FAIL: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done; rm -f cover.out

verify: build vet test race cover

# Perf-focused benchmarks behind the numbers in README.md's Performance
# section. Writes the raw `go test -bench` stream to bench.out and a JSON
# summary (mean ns/op, allocs/op and reported metrics per benchmark) to
# BENCH_PR3.json.
BENCH_PATTERN ?= ApplyRulesFixpoint|CoverageKernels|SweepWorkers|Marking$$|RuleAblation$$
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | tee bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR3.json bench.out

# One-iteration smoke pass over every benchmark in the repository.
bench-quick:
	$(GO) test -bench . -benchtime 1x ./...

# Short fuzz pass over the edge-list parser, the encoder round-trip, and
# the cdsd compute endpoint (hostile JSON must never 5xx).
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadWrite -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzComputeRequest -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzSessionChanges -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzParseText -fuzztime 30s ./internal/metrics/

# Seeded load/conformance baselines against a self-booted cdsd. The
# one-shot run issues 1200 requests across all endpoints and policies;
# the session run streams 1000 delta batches across 50 concurrent
# sessions with every sampled snapshot replayed against an in-process
# oracle session. Both exit nonzero on any mismatch.
load:
	$(GO) run ./cmd/loadgen -self -seed 2026 -n 1200 -workers 8 -conformance -o LOAD_PR4.json
	@echo "wrote LOAD_PR4.json"
	$(GO) run ./cmd/loadgen -self -seed 2026 -sessions 50 -batches 20 -workers 8 \
		-conformance -slo-error-rate 0 -o LOAD_PR7_SESSIONS.json
	@echo "wrote LOAD_PR7_SESSIONS.json"

# Session maintenance benchmarks behind the incremental rule phase
# (DESIGN.md sections 12-13): maintained-vs-scratch delta application at
# N=300, plus the N=1000 sparse scaling sweep whose per-batch cost tracks
# the dirty frontier rather than the host population.
bench-sessions:
	$(GO) test -run '^$$' -bench SessionApplyChanges -benchmem -count 5 . | tee bench-sessions.out
	$(GO) run ./cmd/benchjson -o BENCH_PR8.json bench-sessions.out

# Perf regression gate: re-run the session benchmarks once and diff their
# ns/op against the checked-in session baseline; any benchmark more than
# 20% slower fails the target. BENCH_PR7.json is the pre-incremental
# baseline — the gate proves the dirty-frontier phase never regresses
# below it (the N=1000 sweep postdates PR7 and reports as new).
BENCH_BASELINE ?= BENCH_PR7.json
bench-check:
	$(GO) test -run '^$$' -bench SessionApplyChanges -benchmem . | \
		$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE)

# Serving-path benchmarks: the compute endpoint through the full HTTP
# stack, cold cache / warm cache / cold-with-tracing. Writes the raw
# stream to bench-server.out and a JSON summary to BENCH_PR9.json.
bench-server:
	$(GO) test -run '^$$' -bench ServerCompute -benchmem -count 5 . | tee bench-server.out
	$(GO) run ./cmd/benchjson -o BENCH_PR9.json bench-server.out

# Tracing-overhead regression gate: with tracing disabled (the nil-safe
# no-op path) the compute endpoint must stay within 2% ns/op of the
# pre-tracing ServerCompute baseline folded into BENCH_PR8.json. The
# traced variant postdates the baseline and reports as new. A second
# diff gates allocs/op against BENCH_PR10.json, which locked in the
# pooled-scratch allocation win — the warm path must never creep back
# toward the pre-pooling ~598 allocs/op.
bench-server-check:
	$(GO) test -run '^$$' -bench 'ServerCompute/(cold|warm)' -benchmem -count 3 . | tee bench-server-check.out | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR8.json -threshold 0.02
	$(GO) run ./cmd/benchjson -baseline BENCH_PR10.json -threshold 10 -alloc-threshold 0.10 bench-server-check.out
	@rm -f bench-server-check.out

# Large-N parallel-compute benchmarks: the compute stage
# (ComputeParallel) and the end-to-end scratch pipeline (ComputePipeline,
# BuildParallel + mark + prune) at N=1k/10k/100k x workers=1/4/8, plus
# the ServerCompute endpoint rows whose allocs/op the pooled scratch
# cut. Fixed 5-iteration runs keep the N=100k rows bounded; the JSON
# summary is the BENCH_PR10.json baseline the check target diffs against.
bench-compute:
	$(GO) test -run '^$$' -bench 'ComputeParallel|ComputePipeline|ServerCompute' \
		-benchmem -benchtime 5x -count 3 -timeout 30m . | tee bench-compute.out
	$(GO) run ./cmd/benchjson -o BENCH_PR10.json bench-compute.out

# Parallel-compute regression gate: one pass over the same benchmarks,
# any ns/op more than 20% over BENCH_PR10.json (or allocs/op more than
# 10% over) fails the target.
bench-compute-check:
	$(GO) test -run '^$$' -bench 'ComputeParallel|ComputePipeline|ServerCompute' \
		-benchmem -benchtime 5x -timeout 30m . | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR10.json -alloc-threshold 0.10

# CPU and allocation profiles of the N=100k end-to-end scratch pipeline,
# for chasing build/mark/prune hotspots. Writes pprof artifacts under
# results/.
profile-compute:
	mkdir -p results
	$(GO) test -run '^$$' -bench 'ComputePipeline/N=100000/workers=1$$' -benchtime 5x \
		-cpuprofile results/compute_cpu.pprof -memprofile results/compute_mem.pprof .
	$(GO) tool pprof -top -nodecount 15 results/compute_cpu.pprof
	@echo "wrote results/compute_cpu.pprof results/compute_mem.pprof"

# Render one traced request end to end: pinned client trace id, server
# stage spans, /debug/traces join, span tree on stdout. The same demo is
# smoke-tested in CI by TestTraceDemo, so this target cannot rot.
trace-demo:
	$(GO) test -run 'TestTraceDemo$$' -v ./internal/server/

# CPU and allocation profiles of the maintained session path, for chasing
# rule-phase hotspots. Writes pprof artifacts under results/.
profile:
	mkdir -p results
	$(GO) test -run '^$$' -bench 'SessionApplyChanges$$/maintained' -benchtime 2000x \
		-cpuprofile results/session_cpu.pprof -memprofile results/session_mem.pprof .
	$(GO) tool pprof -top -nodecount 15 results/session_cpu.pprof
	@echo "wrote results/session_cpu.pprof results/session_mem.pprof"

# Deterministic chaos soak: seeded L7 faults (5xx bursts, resets, latency
# spikes) injected into the client transport, ridden out by the resilient
# client (4 retries > the burst bound of 2), every surviving response
# cross-checked against the in-process oracle. Exits nonzero on any
# conformance mismatch or any request-level error.
chaos:
	$(GO) run ./cmd/loadgen -self -seed 2026 -n 600 -workers 8 -chaos -retries 4 \
		-conformance -slo-error-rate 0 -o CHAOS_PR6.json
	@echo "wrote CHAOS_PR6.json"

clean:
	$(GO) clean ./...
