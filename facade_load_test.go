package pacds

import (
	"context"
	"strings"
	"testing"
)

// End-to-end through the facade: boot a local cdsd, drive it with a
// seeded conformance workload, and query its metrics — all via exported
// identifiers only.
func TestFacadeLoadHarness(t *testing.T) {
	local, err := StartLocalCDSServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := local.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	report, err := RunLoad(context.Background(), local.URL, LoadOptions{
		Seed:        99,
		Requests:    40,
		Workers:     2,
		Conformance: true,
		Axes:        LoadAxes{Ns: []int{10}, Radii: []float64{35}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Conformance == nil || report.Conformance.Sampled != 40 {
		t.Fatalf("conformance section: %+v", report.Conformance)
	}
	if report.Conformance.Mismatches != 0 {
		t.Fatalf("mismatches: %+v", report.Conformance.Details)
	}

	// Replay request 0 from the stream definition and confirm purity.
	opts := LoadOptions{Seed: 99, Requests: 40, Workers: 2, Conformance: true,
		Axes: LoadAxes{Ns: []int{10}, Radii: []float64{35}}}
	if a, b := GenerateLoadRequest(opts, 0), GenerateLoadRequest(opts, 0); a.Endpoint != b.Endpoint {
		t.Fatalf("GenerateLoadRequest not pure: %q vs %q", a.Endpoint, b.Endpoint)
	}

	text, err := local.Client(nil).MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := ParseMetricsText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if scrape.Value("cdsd_cache_misses_total") <= 0 {
		t.Fatalf("no cache misses recorded after %d requests", report.Requests)
	}
}
