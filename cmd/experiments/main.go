// Command experiments regenerates the data series behind every figure in
// the paper's evaluation section (Figures 10-13) plus this repository's
// additional analyses (baselines, locality, ablation, stretch).
//
// Usage:
//
//	experiments -figure figure12 [-pergw] [-trials 20] [-ns 10,20,...] [-csv out.csv]
//	experiments -figure all
//
// Text tables go to stdout; -csv additionally writes CSV files (one per
// figure, named <figure>.csv in the given directory when -figure all).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pacds/internal/experiments"
	"pacds/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	figure := fs.String("figure", "all", "figure id ("+strings.Join(experiments.All, ", ")+") or all")
	trials := fs.Int("trials", 20, "trials per configuration")
	seed := fs.Uint64("seed", 20010901, "master seed")
	nsCSV := fs.String("ns", "", "comma-separated host counts (default 10..100 step 10)")
	perGW := fs.Bool("pergw", false, "use premise-consistent per-gateway drain for lifetime figures")
	csvDir := fs.String("csv", "", "directory to write per-figure CSV files into")
	svgDir := fs.String("svg", "", "directory to write per-figure SVG line charts into")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial; any value yields identical output)")
	computeWorkers := fs.Int("compute-workers", 0, "per-cell CDS pipeline fan-out (0 = default 1; any value yields identical output)")
	list := fs.Bool("list", false, "list available experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.All {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	opt := experiments.Options{Trials: *trials, Seed: *seed, PerGateway: *perGW, Workers: *workers, ComputeWorkers: *computeWorkers}
	if *nsCSV != "" {
		for _, part := range strings.Split(*nsCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				return fmt.Errorf("bad -ns entry %q", part)
			}
			opt.Ns = append(opt.Ns, v)
		}
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = experiments.All
	}
	for _, id := range ids {
		fr, err := experiments.ByName(id, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s: %s ==\n", fr.ID, fr.Title)
		for _, note := range fr.Notes {
			fmt.Fprintf(stdout, "   %s\n", note)
		}
		if err := fr.Table().Render(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, fr.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fr.Table().RenderCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*svgDir, fr.ID+".svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := plot.SVG(f, figureSeries(fr), plot.Options{
				Title:  fr.Title,
				XLabel: "N",
				YLabel: "value",
			}); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	return nil
}

// figureSeries converts a FigureResult into plot series.
func figureSeries(fr *experiments.FigureResult) []plot.Series {
	out := make([]plot.Series, 0, len(fr.Series))
	for _, s := range fr.Series {
		ps := plot.Series{Label: s.Label}
		for _, p := range s.Points {
			ps.X = append(ps.X, float64(p.N))
			ps.Y = append(ps.Y, p.Mean)
			ps.YError = append(ps.YError, p.CI)
		}
		out = append(out, ps)
	}
	return out
}
