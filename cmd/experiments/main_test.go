package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigure10Table(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "figure10", "-ns", "15", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "figure10") || !strings.Contains(s, "EL2") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-figure", "locality", "-ns", "15", "-trials", "3", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "locality.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "N,") {
		t.Fatalf("csv content: %q", string(data))
	}
}

func TestPerGatewayFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "figure11", "-ns", "12", "-trials", "2", "-pergw"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "const-pergw") {
		t.Fatalf("per-gateway drain not reflected in notes:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-figure", "bogus"},
		{"-ns", "10,x"},
		{"-ns", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"figure10", "maintenance", "broadcast", "quasi"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-figure", "locality", "-ns", "15", "-trials", "3", "-svg", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "locality.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg ") {
		t.Fatalf("not svg: %.60s", data)
	}
}
