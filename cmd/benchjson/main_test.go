package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pacds
cpu: some CPU
BenchmarkApplyRulesFixpoint/dirty-8     16920   70458 ns/op   12345 B/op   67 allocs/op   2.000 passes
BenchmarkApplyRulesFixpoint/dirty-8     17000   70000 ns/op   12345 B/op   67 allocs/op   2.000 passes
BenchmarkApplyRulesFixpoint/rescan-8     5000  200000 ns/op   45678 B/op  210 allocs/op   3.000 passes
BenchmarkMarking-8                    1000000    1259 ns/op
PASS
ok      pacds   12.345s
`

func TestParseAndSummarize(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	err := run([]string{"-o", out}, strings.NewReader(sampleOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]float64
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	dirty := got["ApplyRulesFixpoint/dirty"]
	if dirty == nil {
		t.Fatalf("missing dirty entry; got keys %v", keys(got))
	}
	if want := (70458.0 + 70000.0) / 2; math.Abs(dirty["ns/op"]-want) > 1e-9 {
		t.Fatalf("dirty ns/op = %v, want %v", dirty["ns/op"], want)
	}
	if dirty["allocs/op"] != 67 || dirty["samples"] != 2 {
		t.Fatalf("dirty = %+v", dirty)
	}
	if got["ApplyRulesFixpoint/rescan"]["passes"] != 3 {
		t.Fatalf("rescan = %+v", got["ApplyRulesFixpoint/rescan"])
	}
	if m := got["Marking"]; m["ns/op"] != 1259 {
		t.Fatalf("Marking = %+v", m)
	}
	if _, ok := got["PASS"]; ok {
		t.Fatal("non-benchmark line leaked into the summary")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok pacds 0.1s\n"), nil); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func TestBaselineDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// Baseline: dirty at 70000 ns/op, rescan at 100000 ns/op, one retired.
	writeJSON(t, base, map[string]map[string]float64{
		"ApplyRulesFixpoint/dirty":  {"ns/op": 70229},
		"ApplyRulesFixpoint/rescan": {"ns/op": 100000},
		"Retired":                   {"ns/op": 42},
	})

	// Current run: dirty flat, rescan 2x slower -> must fail the gate.
	var out strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sampleOutput), &out)
	if err == nil {
		t.Fatalf("want regression error, got none; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "ApplyRulesFixpoint/rescan") {
		t.Fatalf("regression error %q does not name the regressed benchmark", err)
	}
	if strings.Contains(err.Error(), "ApplyRulesFixpoint/dirty") {
		t.Fatalf("flat benchmark flagged as regression: %q", err)
	}
	for _, want := range []string{"Marking", "new (no baseline entry)", "Retired", "retired (baseline only)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff output missing %q:\n%s", want, out.String())
		}
	}

	// A generous threshold admits the same run.
	if err := run([]string{"-baseline", base, "-threshold", "1.5"}, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatalf("threshold 150%%: unexpected failure: %v", err)
	}
}

func TestBaselineAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// Baseline allocs: dirty at 67 (flat vs sampleOutput), rescan at 100
	// (sampleOutput's 210 is a >100% regression). ns/op baselines are
	// generous so only the alloc gate can fail.
	writeJSON(t, base, map[string]map[string]float64{
		"ApplyRulesFixpoint/dirty":  {"ns/op": 1e9, "allocs/op": 67},
		"ApplyRulesFixpoint/rescan": {"ns/op": 1e9, "allocs/op": 100},
	})

	// Default: alloc gate disabled, the doubled allocs pass.
	var out strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatalf("alloc gate disabled: unexpected failure: %v", err)
	}

	// Enabled: rescan's 100 -> 210 allocs/op must fail, dirty must not.
	err := run([]string{"-baseline", base, "-alloc-threshold", "0.1"}, strings.NewReader(sampleOutput), &out)
	if err == nil {
		t.Fatalf("want allocs/op regression error, got none; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "rescan") || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("regression error %q does not name the alloc regression", err)
	}
	if strings.Contains(err.Error(), "dirty") {
		t.Fatalf("flat-alloc benchmark flagged as regression: %q", err)
	}

	// A zero-alloc baseline admits only zero.
	writeJSON(t, base, map[string]map[string]float64{
		"Marking": {"ns/op": 1e9, "allocs/op": 0},
	})
	zeroIn := "BenchmarkMarking-8 100 1259 ns/op 16 B/op 1 allocs/op\n"
	err = run([]string{"-baseline", base, "-alloc-threshold", "0.5"}, strings.NewReader(zeroIn), &out)
	if err == nil || !strings.Contains(err.Error(), "allocation-free") {
		t.Fatalf("want zero-alloc baseline violation, got %v", err)
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func keys(m map[string]map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
