package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pacds
cpu: some CPU
BenchmarkApplyRulesFixpoint/dirty-8     16920   70458 ns/op   12345 B/op   67 allocs/op   2.000 passes
BenchmarkApplyRulesFixpoint/dirty-8     17000   70000 ns/op   12345 B/op   67 allocs/op   2.000 passes
BenchmarkApplyRulesFixpoint/rescan-8     5000  200000 ns/op   45678 B/op  210 allocs/op   3.000 passes
BenchmarkMarking-8                    1000000    1259 ns/op
PASS
ok      pacds   12.345s
`

func TestParseAndSummarize(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	err := run([]string{"-o", out}, strings.NewReader(sampleOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]float64
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	dirty := got["ApplyRulesFixpoint/dirty"]
	if dirty == nil {
		t.Fatalf("missing dirty entry; got keys %v", keys(got))
	}
	if want := (70458.0 + 70000.0) / 2; math.Abs(dirty["ns/op"]-want) > 1e-9 {
		t.Fatalf("dirty ns/op = %v, want %v", dirty["ns/op"], want)
	}
	if dirty["allocs/op"] != 67 || dirty["samples"] != 2 {
		t.Fatalf("dirty = %+v", dirty)
	}
	if got["ApplyRulesFixpoint/rescan"]["passes"] != 3 {
		t.Fatalf("rescan = %+v", got["ApplyRulesFixpoint/rescan"])
	}
	if m := got["Marking"]; m["ns/op"] != 1259 {
		t.Fatalf("Marking = %+v", m)
	}
	if _, ok := got["PASS"]; ok {
		t.Fatal("non-benchmark line leaked into the summary")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\nok pacds 0.1s\n"), nil); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func keys(m map[string]map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
