// Command benchjson converts `go test -bench` text output into a JSON
// summary keyed by benchmark name: for each benchmark, the mean of every
// reported metric (ns/op, B/op, allocs/op, and any b.ReportMetric unit)
// across the -count repetitions, plus the sample count.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 . | benchjson -o BENCH_PR3.json
//	benchjson -o BENCH_PR3.json bench.out
//	go test -run '^$' -bench . -benchmem . | benchjson -baseline BENCH_PR7.json
//
// Lines that are not benchmark results (the goos/goarch header, PASS, ok)
// are ignored, so the raw `go test` stream can be piped in unchanged.
//
// With -baseline, the summary is additionally diffed against a previously
// written JSON file: every benchmark present in both is compared on ns/op,
// and any regression beyond -threshold (default 20%) fails the run with a
// non-zero exit — the CI perf gate. -alloc-threshold (disabled by
// default) additionally gates allocs/op the same way, so an allocation
// win locked into a baseline cannot silently erode. Benchmarks only on
// one side are reported but never fail the gate (they are new or
// retired, not slower).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	baseline := fs.String("baseline", "", "baseline JSON to diff against; regressions fail the run")
	threshold := fs.Float64("threshold", 0.20, "allowed fractional ns/op regression vs the baseline")
	allocThreshold := fs.Float64("alloc-threshold", -1, "allowed fractional allocs/op regression vs the baseline (negative disables the alloc gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	acc := map[string]map[string][]float64{}
	if fs.NArg() == 0 {
		if err := parse(stdin, acc); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parse(f, acc)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if len(acc) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}

	summary := map[string]map[string]float64{}
	for name, metrics := range acc {
		m := map[string]float64{}
		for unit, samples := range metrics {
			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			m[unit] = sum / float64(len(samples))
			m["samples"] = float64(len(samples))
		}
		summary[name] = m
	}

	buf, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if *baseline == "" {
		return nil
	}
	return diffBaseline(stdout, *baseline, summary, *threshold, *allocThreshold)
}

// diffBaseline compares the current summary's ns/op (and, with a
// non-negative allocThreshold, allocs/op) means against a prior benchjson
// artifact and errors out on any regression beyond the threshold.
func diffBaseline(w io.Writer, path string, cur map[string]map[string]float64, threshold, allocThreshold float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	base := map[string]map[string]float64{}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	gate := func(name, unit string, limit float64) {
		curV, ok := cur[name][unit]
		if !ok {
			return
		}
		baseV, ok := base[name][unit]
		if !ok {
			return
		}
		// A zero-alloc baseline admits only zero; ns/op is never zero.
		if baseV == 0 {
			if curV > 0 {
				regressions = append(regressions,
					fmt.Sprintf("%s: 0 -> %.0f %s (baseline was allocation-free)", name, curV, unit))
			}
			return
		}
		ratio := curV / baseV
		fmt.Fprintf(w, "benchjson: %-60s %12.0f -> %12.0f %s (%+.1f%%)\n",
			name, baseV, curV, unit, 100*(ratio-1))
		if ratio > 1+limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%% > %.0f%%)",
					name, baseV, curV, unit, 100*(ratio-1), 100*limit))
		}
	}
	for _, name := range names {
		if _, ok := cur[name]["ns/op"]; !ok {
			continue
		}
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "benchjson: %-60s new (no baseline entry)\n", name)
			continue
		}
		gate(name, "ns/op", threshold)
		if allocThreshold >= 0 {
			gate(name, "allocs/op", allocThreshold)
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(w, "benchjson: %-60s retired (baseline only)\n", name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) vs %s:\n  %s",
			len(regressions), path, strings.Join(regressions, "\n  "))
	}
	return nil
}

// resultLine matches one benchmark result: name (with the trailing
// -GOMAXPROCS suffix), the iteration count, then value/unit pairs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S.*)$`)

// parse folds every benchmark result line of r into acc, keyed by
// benchmark name then metric unit.
func parse(r io.Reader, acc map[string]map[string][]float64) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return fmt.Errorf("odd value/unit fields in %q", sc.Text())
		}
		if acc[name] == nil {
			acc[name] = map[string][]float64{}
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			unit := fields[i+1]
			acc[name][unit] = append(acc[name][unit], v)
		}
	}
	return sc.Err()
}
