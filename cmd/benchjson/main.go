// Command benchjson converts `go test -bench` text output into a JSON
// summary keyed by benchmark name: for each benchmark, the mean of every
// reported metric (ns/op, B/op, allocs/op, and any b.ReportMetric unit)
// across the -count repetitions, plus the sample count.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 . | benchjson -o BENCH_PR3.json
//	benchjson -o BENCH_PR3.json bench.out
//
// Lines that are not benchmark results (the goos/goarch header, PASS, ok)
// are ignored, so the raw `go test` stream can be piped in unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	acc := map[string]map[string][]float64{}
	if fs.NArg() == 0 {
		if err := parse(stdin, acc); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parse(f, acc)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if len(acc) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}

	summary := map[string]map[string]float64{}
	for name, metrics := range acc {
		m := map[string]float64{}
		for unit, samples := range metrics {
			sum := 0.0
			for _, v := range samples {
				sum += v
			}
			m[unit] = sum / float64(len(samples))
			m["samples"] = float64(len(samples))
		}
		summary[name] = m
	}

	buf, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// resultLine matches one benchmark result: name (with the trailing
// -GOMAXPROCS suffix), the iteration count, then value/unit pairs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S.*)$`)

// parse folds every benchmark result line of r into acc, keyed by
// benchmark name then metric unit.
func parse(r io.Reader, acc map[string]map[string][]float64) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return fmt.Errorf("odd value/unit fields in %q", sc.Text())
		}
		if acc[name] == nil {
			acc[name] = map[string][]float64{}
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			unit := fields[i+1]
			acc[name][unit] = append(acc[name][unit], v)
		}
	}
	return sc.Err()
}
