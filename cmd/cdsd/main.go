// Command cdsd is the CDS-computation daemon: it serves the library's
// marking + pruning pipeline over HTTP/JSON with a bounded worker pool,
// an LRU result cache keyed on the canonical graph digest, coalescing of
// identical in-flight requests, and a Prometheus metrics endpoint.
//
// Usage:
//
//	cdsd -addr :8080 [-workers 8] [-compute-workers 4] [-queue 128]
//	     [-cache 1024] [-timeout 10s] [-drain 5s] [-quantum 1.0]
//	     [-maxnodes 100000] [-trace-capacity 4096] [-debug] [-log-level info]
//
// The daemon always serves its request-trace ring at GET /debug/traces
// (sized by -trace-capacity); -debug additionally mounts the
// net/http/pprof profiles under /debug/pprof/. Logs are leveled
// key=value lines on stderr; the listen address stays on stdout.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests complete,
// new requests are refused with 503, and the listener closes within the
// drain deadline.
//
//	curl -s localhost:8080/v1/compute -d '{
//	  "graph": {"nodes": 4, "edges": [[0,1],[1,2],[2,3]]},
//	  "policy": "ND"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pacds/internal/obs"
	"pacds/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdsd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (signal) and
// the graceful drain completes. It prints the bound address on startup so
// callers (and tests) can use ":0".
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent computations (0 = GOMAXPROCS)")
	computeWorkers := fs.Int("compute-workers", 0, "goroutines one compute/verify request may fan out across (0 = default 1; output is identical at every setting)")
	queue := fs.Int("queue", 0, "job queue depth before load shedding (0 = default 128)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default 1024, negative disables)")
	timeout := fs.Duration("timeout", 0, "per-request computation deadline (0 = default 10s)")
	drain := fs.Duration("drain", 0, "graceful shutdown deadline (0 = default 5s)")
	quantum := fs.Float64("quantum", 0, "cache-key energy quantization step (0 = default 1.0)")
	maxNodes := fs.Int("maxnodes", 0, "largest accepted topology (0 = default 100000)")
	brownout := fs.String("brownout", "", "comma-separated endpoints serving stale cache under overload instead of shedding (e.g. compute)")
	cacheTTL := fs.Duration("cache-ttl", 0, "age beyond which cached results are recomputed (0 = never stale)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After hint on 503 responses (0 = default 1s)")
	maxSessions := fs.Int("max-sessions", 0, "live streaming-topology sessions before LRU eviction (0 = default 1024)")
	sessionTTL := fs.Duration("session-ttl", 0, "idle deadline before a session is reaped (0 = default 10m)")
	sessionReap := fs.Duration("session-reap", 0, "session reaper period (0 = default 30s, negative disables)")
	sessionChanges := fs.Int("session-max-changes", 0, "largest accepted delta batch (0 = default 4096)")
	traceCap := fs.Int("trace-capacity", 4096, "completed request traces retained for GET /debug/traces (0 disables tracing)")
	debug := fs.Bool("debug", true, "mount net/http/pprof profiles under /debug/pprof/")
	logLevel := fs.String("log-level", "info", "stderr log verbosity: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	log := obs.NewLogger(os.Stderr, obs.LoggerOptions{Level: level})

	srv := server.New(server.Config{
		Workers:           *workers,
		ComputeWorkers:    *computeWorkers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		RequestTimeout:    *timeout,
		DrainTimeout:      *drain,
		EnergyQuantum:     *quantum,
		MaxNodes:          *maxNodes,
		BrownoutEndpoints: splitList(*brownout),
		CacheTTL:          *cacheTTL,
		ShedRetryAfter:    *retryAfter,
		MaxSessions:       *maxSessions,
		SessionIdleTTL:    *sessionTTL,
		SessionReap:       *sessionReap,
		SessionMaxChanges: *sessionChanges,
		Tracing:           obs.TracerConfig{Capacity: *traceCap},
		Debug:             *debug,
		Logger:            log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stdout, "cdsd listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new API requests first, then let the HTTP
	// layer close idle connections and wait for active handlers, bounded
	// by the drain deadline, then stop the worker pool.
	drainDeadline := *drain
	if drainDeadline <= 0 {
		drainDeadline = 5 * time.Second
	}
	log.Info("draining", "deadline", drainDeadline)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()
	httpErr := hs.Shutdown(shutdownCtx)
	drainErr := srv.Shutdown(shutdownCtx)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return fmt.Errorf("listener shutdown: %w", httpErr)
	}
	if drainErr != nil {
		return drainErr
	}
	log.Info("stopped")
	return nil
}

// splitList parses a comma-separated flag value, dropping empty terms.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
