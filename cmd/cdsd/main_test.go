package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that triggers the graceful drain and waits for
// run to return.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out lockedBuffer
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(ctx, args, &out) }()

	re := regexp.MustCompile(`cdsd listening on (\S+)`)
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for addr == "" {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var stopOnce sync.Once
	var stopErr error
	stop := func() error {
		stopOnce.Do(func() {
			cancel()
			select {
			case stopErr = <-done:
			case <-time.After(10 * time.Second):
				stopErr = errors.New("daemon did not stop")
			}
		})
		return stopErr
	}
	t.Cleanup(func() { stop() })
	return "http://" + addr, stop
}

// lockedBuffer is a goroutine-safe bytes.Buffer (run writes, test reads).
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestDaemonServesAndStopsGracefully(t *testing.T) {
	base, stop := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"graph":{"nodes":4,"edges":[[0,1],[1,2],[2,3]]},"policy":"ND"}`)
	resp, err = http.Post(base+"/v1/compute", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"gateways":[1,2]`) {
		t.Fatalf("compute = %d: %s", resp.StatusCode, buf.String())
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	// The listener must be closed after the drain.
	addr := strings.TrimPrefix(base, "http://")
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after graceful stop")
	}
}

func TestDaemonMetricsEndpoint(t *testing.T) {
	base, _ := startDaemon(t, "-workers", "2", "-cache", "8")
	body := `{"graph":{"nodes":3,"edges":[[0,1],[1,2]]},"policy":"ID"}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/compute", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{
		"cdsd_cache_hits_total 1",
		"cdsd_cache_misses_total 1",
		`cdsd_requests_total{endpoint="compute"} 2`,
		"cdsd_service_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonHealthSplitAndBrownoutFlags: the daemon wires the new flags
// through to the server — /healthz/live and /healthz/ready respond, and
// -brownout shows up in the readiness report.
func TestDaemonHealthSplitAndBrownoutFlags(t *testing.T) {
	base, _ := startDaemon(t, "-brownout", "compute", "-cache-ttl", "30s", "-retry-after", "2s")
	for _, path := range []string{"/healthz/live", "/healthz/ready", "/healthz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `"brownout":["compute"]`) {
		t.Fatalf("readiness does not echo the brownout policy: %s", buf.String())
	}
}

// TestDaemonDebugRoutes: the daemon serves its trace ring and pprof by
// default, honors -trace-capacity 0 / -debug=false, and rejects a bad
// -log-level before binding.
func TestDaemonDebugRoutes(t *testing.T) {
	get := func(base, path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	base, _ := startDaemon(t)
	body := `{"graph":{"nodes":3,"edges":[[0,1],[1,2]]},"policy":"ID"}`
	resp, err := http.Post(base+"/v1/compute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := get(base, "/debug/traces?n=1"); got != http.StatusOK {
		t.Errorf("/debug/traces = %d (want 200 by default)", got)
	}
	if got := get(base, "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d (want 200 with -debug)", got)
	}

	bare, _ := startDaemon(t, "-trace-capacity", "0", "-debug=false")
	if got := get(bare, "/debug/traces"); got != http.StatusNotFound {
		t.Errorf("untraced /debug/traces = %d (want 404)", got)
	}
	if got := get(bare, "/debug/pprof/cmdline"); got != http.StatusNotFound {
		t.Errorf("no-debug /debug/pprof/cmdline = %d (want 404)", got)
	}

	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log-level", "bogus"}, &out); err == nil {
		t.Error("bad -log-level accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" compute, verify ,,")
	if len(got) != 2 || got[0] != "compute" || got[1] != "verify" {
		t.Fatalf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty flag should parse to nil")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-addr"}, &out); err == nil {
		t.Fatal("dangling -addr accepted")
	}
	if err := run(ctx, []string{"stray"}, &out); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run(ctx, []string{"-addr", "999.999.999.999:1"}, &out); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
