package main

import (
	"bytes"
	"strings"
	"testing"
)

const figure1 = "nodes 5\n0 1\n0 4\n1 2\n1 4\n2 3\n"

func TestRunFigure1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policy", "ID", "-verify"}, strings.NewReader(figure1), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "marked (2): [1 2]") {
		t.Fatalf("marking output wrong:\n%s", s)
	}
	if !strings.Contains(s, "invariants: dominating + connected OK") {
		t.Fatalf("verify output missing:\n%s", s)
	}
	if !strings.Contains(s, "property 3: OK") {
		t.Fatalf("property 3 output missing:\n%s", s)
	}
}

func TestRunAllPolicies(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-all"}, strings.NewReader(figure1), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"NR", "ID", "ND", "EL1", "EL2"} {
		if !strings.Contains(out.String(), p) {
			t.Fatalf("missing policy %s:\n%s", p, out.String())
		}
	}
}

func TestRunWithEnergy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-policy", "EL1", "-energy", "10,20,30,40,50"},
		strings.NewReader(figure1), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EL1") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "XX"},                     // unknown policy
		{"-policy", "EL1"},                    // EL1 without energy
		{"-policy", "ID", "-energy", "1,2"},   // wrong energy count
		{"-policy", "ID", "-energy", "1,a,3"}, // bad energy value
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(figure1), &out); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestRunBadGraph(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("garbage"), &out); err == nil {
		t.Fatal("bad graph accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"/nonexistent/file.graph"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunAnalyze(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policy", "ND", "-analyze"}, strings.NewReader(figure1), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "redundancy=") || !strings.Contains(out.String(), "valid CDS") {
		t.Fatalf("analyze output:\n%s", out.String())
	}
}

func TestRunRandomNetwork(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-random", "25", "-seed", "7", "-all", "-verify"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "25 nodes") {
		t.Fatalf("output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "VIOLATION") {
		t.Fatalf("violations on random network:\n%s", out.String())
	}
}
