// Command cdstool computes a connected dominating set for a graph given in
// edge-list format, under any of the paper's pruning policies, and checks
// the CDS invariants.
//
// Usage:
//
//	cdstool -policy ND [-energy "100,80,90,..."] [-verify] [-workers 4] [file]
//
// The graph is read from the named file, or stdin when no file is given.
// Input format:
//
//	nodes <n>
//	<u> <v>
//	...
//
// Output lists the marked set after the marking process, the gateway set
// after the rules, and (with -verify) the invariant check results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pacds/internal/cds"
	"pacds/internal/graph"
	"pacds/internal/udg"
	"pacds/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdstool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdstool", flag.ContinueOnError)
	policyName := fs.String("policy", "ID", "pruning policy: NR, ID, ND, EL1, or EL2")
	energyCSV := fs.String("energy", "", "comma-separated energy levels (required for EL1/EL2)")
	verify := fs.Bool("verify", false, "check CDS invariants and Property 3")
	analyze := fs.Bool("analyze", false, "print backbone quality metrics per policy")
	allPolicies := fs.Bool("all", false, "compute all five policies")
	randomN := fs.Int("random", 0, "generate a random connected unit-disk network with this many hosts instead of reading a graph")
	seed := fs.Uint64("seed", 1, "seed for -random")
	workers := fs.Int("workers", 1, "compute-pipeline fan-out: goroutines for graph build, marking, and pruning (0 = GOMAXPROCS; output is identical at every setting)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	if *randomN > 0 {
		inst, err := udg.RandomConnected(udg.PaperConfig(*randomN), xrand.New(*seed), 5000)
		if err != nil {
			return err
		}
		// Rebuild through the parallel constructor when fan-out is
		// requested; BuildParallel ≡ Build, so the topology is unchanged.
		if *workers != 1 {
			g = udg.BuildParallel(inst.Positions, inst.Config.Field, inst.Config.Radius, *workers)
		} else {
			g = inst.Graph
		}
	} else {
		in := stdin
		if fs.NArg() > 0 {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var err error
		g, err = graph.Read(in)
		if err != nil {
			return err
		}
	}

	var energy []float64
	if *energyCSV != "" {
		for _, part := range strings.Split(*energyCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("bad energy value %q: %v", part, err)
			}
			energy = append(energy, v)
		}
		if len(energy) != g.NumNodes() {
			return fmt.Errorf("got %d energy values for %d nodes", len(energy), g.NumNodes())
		}
	}

	policies := []cds.Policy{}
	if *allPolicies {
		policies = cds.Policies
		if energy == nil {
			// EL1/EL2 need levels; default to the paper's uniform 100.
			energy = make([]float64, g.NumNodes())
			for i := range energy {
				energy[i] = 100
			}
		}
	} else {
		p, err := cds.ByName(*policyName)
		if err != nil {
			return err
		}
		policies = append(policies, p)
	}

	fmt.Fprintf(stdout, "graph: %d nodes, %d edges, connected=%v complete=%v\n",
		g.NumNodes(), g.NumEdges(), g.IsConnected(), g.IsComplete())
	marked := cds.MarkParallel(g, *workers)
	fmt.Fprintf(stdout, "marked (%d): %v\n", cds.CountGateways(marked), ids(marked))

	for _, p := range policies {
		gw, err := cds.ApplyRulesParallel(g, p, marked, energy, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-4s gateways (%d): %v\n", p, cds.CountGateways(gw), ids(gw))
		if *analyze {
			report, err := cds.Analyze(g, gw)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  %s\n", report)
		}
		if *verify {
			if err := cds.VerifyCDS(g, gw); err != nil {
				fmt.Fprintf(stdout, "  INVARIANT VIOLATION: %v\n", err)
			} else {
				fmt.Fprintf(stdout, "  invariants: dominating + connected OK\n")
			}
		}
	}
	if *verify {
		if err := cds.VerifyProperty3(g, marked); err != nil {
			fmt.Fprintf(stdout, "property 3: VIOLATED: %v\n", err)
		} else {
			fmt.Fprintln(stdout, "property 3: OK (marked set preserves all shortest paths)")
		}
	}
	return nil
}

func ids(set []bool) []int {
	out := []int{}
	for v, in := range set {
		if in {
			out = append(out, v)
		}
	}
	return out
}
