// Command cdsim runs one lifetime simulation of the paper's procedure and
// prints per-interval or summary output.
//
// Usage:
//
//	cdsim -n 50 -policy EL1 -drain linear -seed 1 [-trace] [-trials 20]
//
// With -trials > 1 it aggregates lifetimes across independent runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pacds/internal/cds"
	"pacds/internal/energy"
	"pacds/internal/sim"
	"pacds/internal/stats"
	"pacds/internal/trace"
	"pacds/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdsim", flag.ContinueOnError)
	n := fs.Int("n", 50, "number of hosts")
	policyName := fs.String("policy", "EL1", "pruning policy: NR, ID, ND, EL1, or EL2")
	drainName := fs.String("drain", "linear", "gateway drain model: const, linear, quadratic, or a -pergw variant")
	seed := fs.Uint64("seed", 1, "random seed")
	trials := fs.Int("trials", 1, "independent runs to aggregate")
	workers := fs.Int("workers", 0, "parallel trial workers with -trials > 1 (0 = GOMAXPROCS)")
	traceFlag := fs.Bool("trace", false, "print per-interval gateway counts (single trial only)")
	verify := fs.Bool("verify", false, "check CDS invariants every interval")
	static := fs.Bool("static", false, "disable mobility")
	timeseries := fs.String("timeseries", "", "write per-interval CSV time series to this file (single trial only)")
	extended := fs.Bool("extended", false, "continue past the first death until half the hosts die; report the death timeline")
	drop := fs.Float64("drop", 0, "per-delivery radio loss probability in [0, 1]; nonzero runs the hardened distributed protocol")
	crash := fs.Int("crash", 0, "number of hosts that fail permanently during the run (hardened protocol)")
	faultSeed := fs.Uint64("faultseed", 0, "seed for the fault schedule (0 derives it from -seed)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := cds.ByName(*policyName)
	if err != nil {
		return err
	}
	drain, err := energy.ByName(*drainName)
	if err != nil {
		return err
	}
	// NaN compares false against every bound, so reject it explicitly or
	// it silently reaches the fault plan as a "valid" probability.
	if math.IsNaN(*drop) || math.IsInf(*drop, 0) {
		return fmt.Errorf("-drop %v is not a probability (need a finite value in [0, 1])", *drop)
	}
	if *drop < 0 || *drop > 1 {
		return fmt.Errorf("-drop %v outside [0, 1]", *drop)
	}
	if *crash < 0 || (*n > 0 && *crash >= *n) {
		return fmt.Errorf("-crash %d out of range for %d hosts (need 0 <= crash < n)", *crash, *n)
	}

	cfg := sim.PaperConfig(*n, policy, drain, *seed)
	cfg.Verify = *verify
	if *static {
		cfg.Mobility = nil
	}
	cfg.Drop = *drop
	cfg.Crashes = *crash
	cfg.FaultSeed = *faultSeed

	if *drop > 0 || *crash > 0 {
		if *extended {
			return fmt.Errorf("-extended is not supported together with -drop/-crash")
		}
		return runFaulty(cfg, *trials, *timeseries, stdout)
	}

	if *extended {
		m, err := sim.RunExtended(cfg, 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "policy=%v drain=%s n=%d seed=%d (extended)\n", policy, drain.Name(), *n, *seed)
		fmt.Fprintf(stdout, "first death: interval %d\n", m.FirstDeath)
		fmt.Fprintf(stdout, "half dead:   interval %d\n", m.HalfDeath)
		fmt.Fprintf(stdout, "mean gateways: %.2f over %d intervals (truncated=%v)\n",
			m.MeanGateways, m.Intervals, m.Truncated)
		fmt.Fprintf(stdout, "death timeline (first 20): %v\n", firstK(m.DeathIntervals, 20))
		return nil
	}

	if *trials <= 1 {
		var rec trace.Recorder
		if *timeseries != "" {
			cfg.Observer = rec.Observe
		}
		m, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		if *timeseries != "" {
			f, err := os.Create(*timeseries)
			if err != nil {
				return err
			}
			if err := rec.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s (%d intervals)\n", *timeseries, rec.Len())
		}
		fmt.Fprintf(stdout, "policy=%v drain=%s n=%d seed=%d\n", policy, drain.Name(), *n, *seed)
		fmt.Fprintf(stdout, "lifetime: %d update intervals (truncated=%v)\n", m.Intervals, m.Truncated)
		fmt.Fprintf(stdout, "mean gateways: %.2f\n", m.MeanGateways)
		if m.FirstDead >= 0 {
			fmt.Fprintf(stdout, "first death: host %d\n", m.FirstDead)
		}
		fmt.Fprintf(stdout, "residual energy: total=%.1f variance=%.1f\n", m.ResidualEnergy, m.ResidualVariance)
		if m.DisconnectedIntervals > 0 {
			fmt.Fprintf(stdout, "disconnected intervals: %d\n", m.DisconnectedIntervals)
		}
		if *traceFlag {
			fmt.Fprintln(stdout, "interval  gateways")
			for i, c := range m.GatewayCounts {
				fmt.Fprintf(stdout, "%8d  %8d\n", i+1, c)
			}
		}
		return nil
	}

	ts, err := sim.RunTrialsParallel(cfg, *trials, *workers)
	if err != nil {
		return err
	}
	life := stats.Summarize(ts.Lifetime)
	gws := stats.Summarize(ts.MeanGateways)
	fmt.Fprintf(stdout, "policy=%v drain=%s n=%d trials=%d\n", policy, drain.Name(), *n, *trials)
	fmt.Fprintf(stdout, "lifetime:  %s\n", life)
	fmt.Fprintf(stdout, "gateways:  %s\n", gws)
	if ts.TruncatedRuns > 0 {
		fmt.Fprintf(stdout, "truncated runs: %d\n", ts.TruncatedRuns)
	}
	return nil
}

// runFaulty executes the lifetime simulation through the hardened
// fault-tolerant protocol and reports radio-fault costs alongside the
// usual lifetime metrics.
func runFaulty(cfg sim.Config, trials int, timeseries string, stdout io.Writer) error {
	banner := fmt.Sprintf("policy=%v drain=%s n=%d drop=%.2f crash=%d",
		cfg.Policy, cfg.Drain.Name(), cfg.N, cfg.Drop, cfg.Crashes)
	if trials <= 1 {
		var rec trace.FaultRecorder
		if timeseries != "" {
			cfg.FaultObserver = rec.Observe
		}
		m, err := sim.RunDistributed(cfg)
		if err != nil {
			return err
		}
		if timeseries != "" {
			f, err := os.Create(timeseries)
			if err != nil {
				return err
			}
			if err := rec.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s (%d intervals)\n", timeseries, rec.Len())
		}
		fmt.Fprintf(stdout, "%s seed=%d\n", banner, cfg.Seed)
		fmt.Fprintf(stdout, "lifetime: %d update intervals (truncated=%v)\n", m.Intervals, m.Truncated)
		fmt.Fprintf(stdout, "mean gateways: %.2f\n", m.MeanGateways)
		fmt.Fprintf(stdout, "faults: drops=%d duplicates=%d retransmissions=%d evictions=%d\n",
			m.Drops, m.Duplicates, m.Retransmissions, m.Evictions)
		fmt.Fprintf(stdout, "crashed hosts: %d; degraded intervals: %d\n",
			m.HostCrashes, m.DegradedIntervals)
		return nil
	}
	seedRNG := xrand.New(cfg.Seed)
	var lifetimes, gateways []float64
	truncated := 0
	for i := 0; i < trials; i++ {
		c := cfg
		c.Seed = seedRNG.Uint64()
		c.FaultSeed = seedRNG.Uint64()
		m, err := sim.RunDistributed(c)
		if err != nil {
			return err
		}
		lifetimes = append(lifetimes, float64(m.Intervals))
		gateways = append(gateways, m.MeanGateways)
		if m.Truncated {
			truncated++
		}
	}
	fmt.Fprintf(stdout, "%s trials=%d\n", banner, trials)
	fmt.Fprintf(stdout, "lifetime:  %s\n", stats.Summarize(lifetimes))
	fmt.Fprintf(stdout, "gateways:  %s\n", stats.Summarize(gateways))
	if truncated > 0 {
		fmt.Fprintf(stdout, "truncated runs: %d\n", truncated)
	}
	return nil
}

// firstK returns at most the first k elements of xs.
func firstK(xs []int, k int) []int {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
