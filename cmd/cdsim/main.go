// Command cdsim runs one lifetime simulation of the paper's procedure and
// prints per-interval or summary output.
//
// Usage:
//
//	cdsim -n 50 -policy EL1 -drain linear -seed 1 [-trace] [-trials 20]
//
// With -trials > 1 it aggregates lifetimes across independent runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pacds/internal/cds"
	"pacds/internal/energy"
	"pacds/internal/sim"
	"pacds/internal/stats"
	"pacds/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cdsim", flag.ContinueOnError)
	n := fs.Int("n", 50, "number of hosts")
	policyName := fs.String("policy", "EL1", "pruning policy: NR, ID, ND, EL1, or EL2")
	drainName := fs.String("drain", "linear", "gateway drain model: const, linear, quadratic, or a -pergw variant")
	seed := fs.Uint64("seed", 1, "random seed")
	trials := fs.Int("trials", 1, "independent runs to aggregate")
	traceFlag := fs.Bool("trace", false, "print per-interval gateway counts (single trial only)")
	verify := fs.Bool("verify", false, "check CDS invariants every interval")
	static := fs.Bool("static", false, "disable mobility")
	timeseries := fs.String("timeseries", "", "write per-interval CSV time series to this file (single trial only)")
	extended := fs.Bool("extended", false, "continue past the first death until half the hosts die; report the death timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := cds.ByName(*policyName)
	if err != nil {
		return err
	}
	drain, err := energy.ByName(*drainName)
	if err != nil {
		return err
	}

	cfg := sim.PaperConfig(*n, policy, drain, *seed)
	cfg.Verify = *verify
	if *static {
		cfg.Mobility = nil
	}

	if *extended {
		m, err := sim.RunExtended(cfg, 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "policy=%v drain=%s n=%d seed=%d (extended)\n", policy, drain.Name(), *n, *seed)
		fmt.Fprintf(stdout, "first death: interval %d\n", m.FirstDeath)
		fmt.Fprintf(stdout, "half dead:   interval %d\n", m.HalfDeath)
		fmt.Fprintf(stdout, "mean gateways: %.2f over %d intervals (truncated=%v)\n",
			m.MeanGateways, m.Intervals, m.Truncated)
		fmt.Fprintf(stdout, "death timeline (first 20): %v\n", firstK(m.DeathIntervals, 20))
		return nil
	}

	if *trials <= 1 {
		var rec trace.Recorder
		if *timeseries != "" {
			cfg.Observer = rec.Observe
		}
		m, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		if *timeseries != "" {
			f, err := os.Create(*timeseries)
			if err != nil {
				return err
			}
			if err := rec.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s (%d intervals)\n", *timeseries, rec.Len())
		}
		fmt.Fprintf(stdout, "policy=%v drain=%s n=%d seed=%d\n", policy, drain.Name(), *n, *seed)
		fmt.Fprintf(stdout, "lifetime: %d update intervals (truncated=%v)\n", m.Intervals, m.Truncated)
		fmt.Fprintf(stdout, "mean gateways: %.2f\n", m.MeanGateways)
		if m.FirstDead >= 0 {
			fmt.Fprintf(stdout, "first death: host %d\n", m.FirstDead)
		}
		fmt.Fprintf(stdout, "residual energy: total=%.1f variance=%.1f\n", m.ResidualEnergy, m.ResidualVariance)
		if m.DisconnectedIntervals > 0 {
			fmt.Fprintf(stdout, "disconnected intervals: %d\n", m.DisconnectedIntervals)
		}
		if *traceFlag {
			fmt.Fprintln(stdout, "interval  gateways")
			for i, c := range m.GatewayCounts {
				fmt.Fprintf(stdout, "%8d  %8d\n", i+1, c)
			}
		}
		return nil
	}

	ts, err := sim.RunTrialsParallel(cfg, *trials, 0)
	if err != nil {
		return err
	}
	life := stats.Summarize(ts.Lifetime)
	gws := stats.Summarize(ts.MeanGateways)
	fmt.Fprintf(stdout, "policy=%v drain=%s n=%d trials=%d\n", policy, drain.Name(), *n, *trials)
	fmt.Fprintf(stdout, "lifetime:  %s\n", life)
	fmt.Fprintf(stdout, "gateways:  %s\n", gws)
	if ts.TruncatedRuns > 0 {
		fmt.Fprintf(stdout, "truncated runs: %d\n", ts.TruncatedRuns)
	}
	return nil
}

// firstK returns at most the first k elements of xs.
func firstK(xs []int, k int) []int {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
