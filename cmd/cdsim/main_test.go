package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestSingleRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "20", "-policy", "ID", "-drain", "linear", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lifetime:") || !strings.Contains(s, "mean gateways:") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestTrialsRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "15", "-policy", "ND", "-drain", "const-pergw", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trials=3") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestTraceRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "15", "-drain", "linear", "-trace", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interval  gateways") {
		t.Fatalf("trace header missing:\n%s", out.String())
	}
}

func TestStaticAndVerify(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-static", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	args := []string{"-n", "20", "-policy", "EL2", "-drain", "quadratic", "-seed", "77"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-drain", "bogus"},
		{"-n", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestExtendedRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-extended", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "first death:") || !strings.Contains(s, "half dead:") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestTimeseriesOutput(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ts.csv"
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-timeseries", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "interval,gateways,") {
		t.Fatalf("csv: %.60s", data)
	}
}
