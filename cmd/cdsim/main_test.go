package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestSingleRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "20", "-policy", "ID", "-drain", "linear", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lifetime:") || !strings.Contains(s, "mean gateways:") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestTrialsRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "15", "-policy", "ND", "-drain", "const-pergw", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trials=3") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestTraceRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "15", "-drain", "linear", "-trace", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interval  gateways") {
		t.Fatalf("trace header missing:\n%s", out.String())
	}
}

func TestStaticAndVerify(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-static", "-verify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	args := []string{"-n", "20", "-policy", "EL2", "-drain", "quadratic", "-seed", "77"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-drain", "bogus"},
		{"-n", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestExtendedRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-extended", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "first death:") || !strings.Contains(s, "half dead:") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestTimeseriesOutput(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ts.csv"
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-timeseries", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "interval,gateways,") {
		t.Fatalf("csv: %.60s", data)
	}
}

func TestFaultyRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "15", "-policy", "ND", "-drain", "linear",
		"-drop", "0.1", "-crash", "2", "-verify", "-seed", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"drop=0.10 crash=2", "faults: drops=", "crashed hosts: 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestFaultyTrialsRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-drop", "0.05", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trials=3") || !strings.Contains(out.String(), "drop=0.05") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFaultyTimeseries(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/faults.csv"
	var out bytes.Buffer
	err := run([]string{"-n", "12", "-drain", "linear", "-drop", "0.1", "-timeseries", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "interval,rounds,messages,retransmissions,") {
		t.Fatalf("csv: %.80s", data)
	}
}

func TestFaultyDeterministicOutput(t *testing.T) {
	args := []string{"-n", "14", "-policy", "EL2", "-drain", "linear",
		"-drop", "0.15", "-crash", "1", "-faultseed", "8", "-seed", "2"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seeds produced different faulty output")
	}
}

func TestBadFaultFlags(t *testing.T) {
	cases := [][]string{
		{"-drop", "-0.1"},
		{"-drop", "1.5"},
		{"-drop", "NaN"},
		{"-drop", "nan"},
		{"-drop", "+Inf"},
		{"-drop", "-Inf"},
		{"-crash", "-1"},
		{"-n", "10", "-crash", "10"},
		{"-n", "10", "-crash", "11"},
		{"-drop", "0.1", "-extended"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestBadFaultFlagErrorsAreClear(t *testing.T) {
	// The error message must name the flag and the constraint, not just
	// fail downstream with a cryptic internal error.
	var out bytes.Buffer
	err := run([]string{"-drop", "NaN"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-drop") || !strings.Contains(err.Error(), "[0, 1]") {
		t.Fatalf("NaN drop error = %v", err)
	}
	err = run([]string{"-n", "10", "-crash", "12"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-crash") || !strings.Contains(err.Error(), "10 hosts") {
		t.Fatalf("crash range error = %v", err)
	}
}
