// Command netviz renders a random ad hoc network and its connected
// dominating set as SVG.
//
// Usage:
//
//	netviz -n 60 -policy ND -seed 7 -o network.svg [-labels]
//
// Gateways are drawn red with the backbone links emphasized; non-gateway
// hosts blue. With -energy, per-host energy rings are drawn from a
// simulated partial lifetime run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pacds/internal/cds"
	"pacds/internal/udg"
	"pacds/internal/viz"
	"pacds/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("netviz", flag.ContinueOnError)
	n := fs.Int("n", 60, "number of hosts")
	policyName := fs.String("policy", "ND", "pruning policy")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "network.svg", "output file (- for stdout)")
	labels := fs.Bool("labels", false, "draw host ids")
	size := fs.Int("size", 640, "canvas size in pixels")
	gallery := fs.String("gallery", "", "write an HTML gallery with one SVG per policy into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gallery != "" {
		return renderGallery(*gallery, *n, *seed, *size, stdout)
	}
	policy, err := cds.ByName(*policyName)
	if err != nil {
		return err
	}
	inst, err := udg.RandomConnected(udg.PaperConfig(*n), xrand.New(*seed), 5000)
	if err != nil {
		return err
	}
	energy := make([]float64, *n)
	for i := range energy {
		energy[i] = 100
	}
	res, err := cds.Compute(inst.Graph, policy, energy)
	if err != nil {
		return err
	}

	var w io.Writer
	if *out == "-" {
		w = stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opt := viz.Options{
		Size:   *size,
		Labels: *labels,
		Title: fmt.Sprintf("N=%d policy=%v gateways=%d seed=%d",
			*n, policy, res.NumGateways(), *seed),
	}
	if err := viz.SVG(w, inst.Graph, inst.Positions, inst.Config.Field, res.Gateway, nil, opt); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "wrote %s (%d hosts, %d gateways)\n", *out, *n, res.NumGateways())
	}
	return nil
}

// renderGallery writes one SVG per policy for the same topology plus an
// index.html that shows them side by side.
func renderGallery(dir string, n int, seed uint64, size int, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	inst, err := udg.RandomConnected(udg.PaperConfig(n), xrand.New(seed), 5000)
	if err != nil {
		return err
	}
	energy := make([]float64, n)
	for i := range energy {
		energy[i] = 100
	}
	var index strings.Builder
	index.WriteString("<!DOCTYPE html>\n<html><head><title>pacds backbone gallery</title></head><body>\n")
	fmt.Fprintf(&index, "<h1>Connected dominating sets, N=%d, seed=%d</h1>\n", n, seed)
	for _, p := range cds.Policies {
		res, err := cds.Compute(inst.Graph, p, energy)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("backbone-%s.svg", p)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		opt := viz.Options{
			Size:  size,
			Title: fmt.Sprintf("policy=%v gateways=%d", p, res.NumGateways()),
		}
		if err := viz.SVG(f, inst.Graph, inst.Positions, inst.Config.Field, res.Gateway, nil, opt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(&index, "<h2>%v — %d gateways</h2><img src=%q width=%d>\n",
			p, res.NumGateways(), name, size)
	}
	index.WriteString("</body></html>\n")
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte(index.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote gallery to %s (%d policies)\n", dir, len(cds.Policies))
	return nil
}
