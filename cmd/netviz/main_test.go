package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.svg")
	var stdout bytes.Buffer
	if err := run([]string{"-n", "25", "-seed", "3", "-o", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg ") {
		t.Fatalf("not svg: %.60s", data)
	}
	if !strings.Contains(stdout.String(), "wrote ") {
		t.Fatalf("stdout: %q", stdout.String())
	}
}

func TestRenderToStdout(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-n", "15", "-o", "-", "-labels"}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "</svg>") {
		t.Fatal("no svg on stdout")
	}
}

func TestBadPolicy(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-policy", "XX"}, &stdout); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestGallery(t *testing.T) {
	dir := t.TempDir()
	var stdout bytes.Buffer
	if err := run([]string{"-gallery", dir, "-n", "20", "-seed", "3"}, &stdout); err != nil {
		t.Fatal(err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"NR", "ID", "ND", "EL1", "EL2"} {
		if !strings.Contains(string(idx), "backbone-"+p+".svg") {
			t.Fatalf("gallery missing policy %s", p)
		}
		data, err := os.ReadFile(filepath.Join(dir, "backbone-"+p+".svg"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg ") {
			t.Fatalf("policy %s svg malformed", p)
		}
	}
}
