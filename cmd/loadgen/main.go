// Command loadgen drives a cdsd server with a deterministic seeded
// workload and emits a machine-readable load/conformance report.
//
// The request stream is a pure function of the seed: `loadgen -seed 7`
// issues the same requests (and, with -conformance, reaches the same
// verdicts) whether -workers is 1 or 64. Point it at a running server
// with -url, or let it boot a private in-process server with -self:
//
//	loadgen -self -seed 7 -n 1000 -conformance -o LOAD.json
//
// With -chaos the client transport injects deterministic seeded faults
// (bounded 5xx bursts, connection resets, latency spikes); -retries N
// enables the resilient client, which must ride out every burst when N
// exceeds -chaos-burst:
//
//	loadgen -self -seed 7 -n 600 -chaos -retries 4 -conformance -slo-error-rate 0
//
// With -trace every request carries a deterministic X-Trace-Id; after
// the run the harness reads the server's /debug/traces ring, joins the
// span trees back to their stream indices, and adds a traces section to
// the report: per-stage counts and latency quantiles, stage-sum
// consistency checks, and a worker-count-invariant stage-set digest:
//
//	loadgen -self -seed 7 -n 200 -trace
//
// The exit status is 0 on success, 1 on setup errors, and 2 when the
// run violates an SLO gate (including the zero-mismatch conformance
// gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"pacds/internal/chaos"
	"pacds/internal/load"
	"pacds/internal/obs"
	"pacds/internal/resilience"
	"pacds/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)

	url := fs.String("url", "", "base URL of a running cdsd server (e.g. http://127.0.0.1:8080)")
	self := fs.Bool("self", false, "boot a private in-process cdsd on loopback and drive it")
	seed := fs.Uint64("seed", 1, "workload seed; equal seeds issue equal request streams")
	n := fs.Int("n", 200, "number of requests (ignored with -soak)")
	workers := fs.Int("workers", 4, "concurrent workers (never changes the request stream)")
	computeWorkers := fs.Int("compute-workers", 0, "with -self, boot the private cdsd with this per-request compute fan-out (0 = serial; responses are identical at every setting)")
	rate := fs.Float64("rate", 0, "open-loop target requests/sec (0 = closed loop)")
	soak := fs.Duration("soak", 0, "run for this duration instead of a fixed -n")
	mixFlag := fs.String("mix", "", "request mix, e.g. compute=8,verify=1,simulate=1")
	ns := fs.String("ns", "", "comma-separated topology sizes (default 20,40,80)")
	radii := fs.String("radii", "", "comma-separated transmission radii (default 20,25,30)")
	policies := fs.String("policies", "", "comma-separated pruning policies (default ID,ND,EL1,EL2)")
	conformance := fs.Bool("conformance", false, "cross-check sampled responses against the in-process library")
	sample := fs.Int("sample", 1, "conformance-check every k-th request")
	faultFrac := fs.Float64("fault-frac", 0, "fraction of computes carrying fault scenarios")
	faultStart := fs.Int("fault-start", 0, "first stream index eligible for fault injection")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	chaosOn := fs.Bool("chaos", false, "inject deterministic L7 faults (5xx bursts, resets, latency) into the client transport")
	chaosSeed := fs.Uint64("chaos-seed", 0, "chaos plan seed (0 = derive from -seed)")
	chaosErrP := fs.Float64("chaos-error-p", 0.35, "per-request probability of a synthetic 5xx burst")
	chaosResetP := fs.Float64("chaos-reset-p", 0.15, "per-request probability of a connection-reset burst")
	chaosLatP := fs.Float64("chaos-latency-p", 0.2, "per-attempt probability of an injected latency spike")
	chaosBurst := fs.Int("chaos-burst", 2, "longest fault burst in attempts; -retries above this rides every burst out")
	retries := fs.Int("retries", 0, "client retries per request (0 = raw non-retrying client)")
	hedge := fs.Duration("hedge", 0, "hedge a duplicate attempt after this delay (0 = no hedging)")
	retryBudget := fs.Float64("retry-budget", -1, "retry token-bucket capacity (negative = unlimited, keeps chaos runs deterministic)")
	sloErrRate := fs.Float64("slo-error-rate", -1, "fail if error rate exceeds this (negative = no gate)")
	sloP99 := fs.Float64("slo-p99", 0, "fail if any endpoint p99 exceeds this many seconds (0 = no gate; implies -timing)")
	trace := fs.Bool("trace", false, "pin deterministic trace ids, join server span trees into the report (implies -timing; -self boots a traced server)")
	logLevel := fs.String("log-level", "info", "stderr log verbosity: debug, info, warn, or error")
	timing := fs.Bool("timing", false, "include wall-clock sections (latency quantiles, RPS) in the report")
	out := fs.String("o", "", "write the JSON report to this file (default stdout)")
	sessions := fs.Int("sessions", 0, "streaming-session mode: drive this many concurrent topology sessions instead of one-shot requests")
	batches := fs.Int("batches", 0, "delta batches per session (session mode; default 10)")
	energyEvery := fs.Int("energy-every", 4, "attach an energy refresh to every k-th batch (session mode; 0 disables)")

	if err := fs.Parse(args); err != nil {
		return 1
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: -log-level: %v\n", err)
		return 1
	}
	log := obs.NewLogger(stderr, obs.LoggerOptions{Level: level})
	if (*url == "") == !*self {
		log.Error("exactly one of -url or -self is required")
		return 1
	}

	if *sessions > 0 {
		if *trace {
			log.Error("-trace is not supported in -sessions mode")
			return 1
		}
		return runSessions(sessionArgs{
			url: *url, self: *self, seed: *seed, sessions: *sessions, batches: *batches,
			workers: *workers, computeWorkers: *computeWorkers, energyEvery: *energyEvery,
			ns: *ns, radii: *radii,
			policies: *policies, conformance: *conformance, sample: *sample,
			timeout: *timeout, timing: *timing || *sloP99 > 0,
			sloErrRate: *sloErrRate, sloP99: *sloP99, out: *out,
		}, stdout, log)
	}

	opts := load.Options{
		Seed:           *seed,
		Requests:       *n,
		Workers:        *workers,
		ComputeWorkers: *computeWorkers,
		Rate:           *rate,
		Duration:       *soak,
		Conformance:    *conformance,
		Sample:         *sample,
		FaultFraction:  *faultFrac,
		FaultStart:     *faultStart,
		Timeout:        *timeout,
		Trace:          *trace,
		IncludeTiming:  *timing || *sloP99 > 0 || *trace,
		Scrape:         true,
	}
	if opts.Mix, err = parseMix(*mixFlag); err != nil {
		log.Error("bad -mix", "err", err)
		return 1
	}
	if opts.Axes.Ns, err = parseInts(*ns); err != nil {
		log.Error("bad -ns", "err", err)
		return 1
	}
	if opts.Axes.Radii, err = parseFloats(*radii); err != nil {
		log.Error("bad -radii", "err", err)
		return 1
	}
	if *policies != "" {
		opts.Axes.Policies = strings.Split(*policies, ",")
	}
	if *sloErrRate >= 0 || *sloP99 > 0 || *conformance {
		opts.SLO = &load.SLO{MaxErrorRate: *sloErrRate, MaxP99Seconds: *sloP99}
	}
	if *chaosOn {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = *seed
		}
		opts.Chaos = &chaos.Config{
			Seed:     cseed,
			ErrorP:   *chaosErrP,
			ResetP:   *chaosResetP,
			LatencyP: *chaosLatP,
			MaxBurst: *chaosBurst,
		}
	}
	if *retries > 0 || *hedge > 0 {
		opts.Resilience = &server.ResilienceConfig{
			MaxAttempts: *retries + 1,
			Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: *seed},
			// The chaos gate judges retry/backoff behavior; the breaker is
			// parked out of reach so per-request fault bursts cannot trip
			// it and turn a deterministic run probabilistic.
			Breaker:     resilience.BreakerConfig{FailureThreshold: 1 << 30},
			RetryBudget: *retryBudget,
			HedgeDelay:  *hedge,
		}
	}

	target := *url
	if *self {
		cfg := server.Config{ComputeWorkers: *computeWorkers}
		if *trace {
			// Size the ring to retain the whole run; one stripe because the
			// report joins every trace by id, so retention must be exact
			// (striped rings retain per stripe, not globally).
			capacity := *n + 64
			if *soak > 0 {
				capacity = 1 << 16
			}
			cfg.Tracing = obs.TracerConfig{Capacity: capacity, Stripes: 1, Seed: *seed}
		}
		local, err := server.StartLocal(cfg)
		if err != nil {
			log.Error("self-boot failed", "err", err)
			return 1
		}
		defer local.Close()
		target = local.URL
		log.Debug("self-booted private cdsd", "url", target, "traced", *trace)
	}

	report, err := load.Run(context.Background(), target, opts)
	if err != nil {
		log.Error("run failed", "err", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Error("cannot create report file", "path", *out, "err", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteJSON(w); err != nil {
		log.Error("write report failed", "err", err)
		return 1
	}

	if report.SLO != nil && !report.SLO.Pass {
		for _, v := range report.SLO.Violations {
			log.Error("SLO violation", "violation", v)
		}
		return 2
	}
	return 0
}

// sessionArgs carries the parsed flags of a -sessions run.
type sessionArgs struct {
	url            string
	self           bool
	seed           uint64
	sessions       int
	batches        int
	workers        int
	computeWorkers int
	energyEvery    int
	ns             string
	radii          string
	policies       string
	conformance    bool
	sample         int
	timeout        time.Duration
	timing         bool
	sloErrRate     float64
	sloP99         float64
	out            string
}

// runSessions executes the streaming-session mode: stateful sessions fed
// deterministic mobility-derived delta streams, with optional exact
// conformance against in-process oracle sessions.
func runSessions(a sessionArgs, stdout io.Writer, log *slog.Logger) int {
	opts := load.SessionOptions{
		Seed:           a.seed,
		Sessions:       a.sessions,
		Batches:        a.batches,
		Workers:        a.workers,
		ComputeWorkers: a.computeWorkers,
		EnergyEvery:    a.energyEvery,
		Conformance:    a.conformance,
		Sample:         a.sample,
		Timeout:        a.timeout,
		IncludeTiming:  a.timing,
	}
	var err error
	if opts.Axes.Ns, err = parseInts(a.ns); err != nil {
		log.Error("bad -ns", "err", err)
		return 1
	}
	if opts.Axes.Radii, err = parseFloats(a.radii); err != nil {
		log.Error("bad -radii", "err", err)
		return 1
	}
	if a.policies != "" {
		opts.Axes.Policies = strings.Split(a.policies, ",")
	}
	if a.sloErrRate >= 0 || a.sloP99 > 0 || a.conformance {
		opts.SLO = &load.SLO{MaxErrorRate: a.sloErrRate, MaxP99Seconds: a.sloP99}
	}

	target := a.url
	if a.self {
		// Size the session table and queue to the workload so a correct
		// run is shed-free.
		local, err := server.StartLocal(server.Config{
			MaxSessions:    a.sessions + 16,
			QueueDepth:     4 * (a.sessions + 16),
			ComputeWorkers: a.computeWorkers,
		})
		if err != nil {
			log.Error("self-boot failed", "err", err)
			return 1
		}
		defer local.Close()
		target = local.URL
	}

	report, err := load.RunSessions(context.Background(), target, opts)
	if err != nil {
		log.Error("run failed", "err", err)
		return 1
	}
	w := stdout
	if a.out != "" {
		f, err := os.Create(a.out)
		if err != nil {
			log.Error("cannot create report file", "path", a.out, "err", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteJSON(w); err != nil {
		log.Error("write report failed", "err", err)
		return 1
	}
	if report.SLO != nil && !report.SLO.Pass {
		for _, v := range report.SLO.Violations {
			log.Error("SLO violation", "violation", v)
		}
		return 2
	}
	return 0
}

// parseMix parses "compute=8,verify=1,simulate=1" (empty = defaults).
func parseMix(s string) (load.Mix, error) {
	var m load.Mix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("malformed term %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight in %q", part)
		}
		switch kv[0] {
		case "compute":
			m.Compute = w
		case "verify":
			m.Verify = w
		case "simulate":
			m.Simulate = w
		default:
			return m, fmt.Errorf("unknown request kind %q", kv[0])
		}
	}
	return m, nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
