package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"pacds/internal/load"
)

// gold runs loadgen with -self against a fresh private server and
// returns (exit code, stdout bytes).
func gold(t *testing.T, extra ...string) (int, []byte) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"-self"}, extra...)
	code := run(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Logf("stderr: %s", stderr.String())
	}
	return code, stdout.Bytes()
}

// TestGoldenReportByteIdentical is the end-to-end determinism lock:
// boot a fresh server, run a seeded conformance pass, emit the JSON
// report; do it all again; the two reports must be byte-identical.
func TestGoldenReportByteIdentical(t *testing.T) {
	args := []string{"-seed", "7", "-n", "120", "-workers", "1", "-conformance"}
	code1, out1 := gold(t, args...)
	code2, out2 := gold(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes %d, %d (want 0)", code1, code2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("same-seed golden reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	var report load.Report
	if err := json.Unmarshal(out1, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Conformance == nil || report.Conformance.Mismatches != 0 {
		t.Fatalf("golden run not conformant: %+v", report.Conformance)
	}
}

// TestWorkerCountInvariance: the same seed at different concurrency
// levels must produce the same stream digest, the same per-endpoint
// traffic, and the same conformance verdicts.
func TestWorkerCountInvariance(t *testing.T) {
	parse := func(workers int) *load.Report {
		code, out := gold(t, "-seed", "11", "-n", "100", "-conformance",
			"-workers", strconv.Itoa(workers))
		if code != 0 {
			t.Fatalf("workers=%d exited %d", workers, code)
		}
		var r load.Report
		if err := json.Unmarshal(out, &r); err != nil {
			t.Fatalf("workers=%d: bad report: %v", workers, err)
		}
		return &r
	}
	a, b := parse(1), parse(8)
	if a.StreamDigest != b.StreamDigest {
		t.Fatalf("stream digest differs: %s vs %s", a.StreamDigest, b.StreamDigest)
	}
	if !reflect.DeepEqual(a.Endpoints, b.Endpoints) {
		t.Fatalf("endpoint accounting differs:\n%+v\nvs\n%+v", a.Endpoints, b.Endpoints)
	}
	if !reflect.DeepEqual(a.Conformance, b.Conformance) {
		t.Fatalf("conformance differs:\n%+v\nvs\n%+v", a.Conformance, b.Conformance)
	}
}

// TestConformanceSweepAllPolicies is the acceptance gate: >= 1000
// sampled requests spanning all four pruning policies, with zero
// mismatches between cdsd responses and the in-process library.
func TestConformanceSweepAllPolicies(t *testing.T) {
	code, out := gold(t, "-seed", "3", "-n", "1000", "-workers", "8", "-conformance")
	if code != 0 {
		t.Fatalf("exit code %d (want 0)\n%s", code, out)
	}
	var r load.Report
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if r.Conformance.Sampled < 1000 {
		t.Fatalf("sampled %d < 1000", r.Conformance.Sampled)
	}
	if r.Conformance.Mismatches != 0 {
		t.Fatalf("%d mismatches: %+v", r.Conformance.Mismatches, r.Conformance.Details)
	}
	for _, p := range []string{"ID", "ND", "EL1", "EL2"} {
		if r.Conformance.SampledByPolicy[p] == 0 {
			t.Errorf("policy %s never sampled", p)
		}
	}
	for _, ep := range []string{"compute", "verify", "simulate"} {
		if r.Conformance.SampledByEndpoint[ep] == 0 {
			t.Errorf("endpoint %s never sampled", ep)
		}
	}
	if r.SLO == nil || !r.SLO.Pass {
		t.Fatalf("conformance SLO did not pass: %+v", r.SLO)
	}
}

// TestTraceFlag: a -trace run self-boots a traced server, joins every
// server span tree back to its request, and reports stage latencies.
func TestTraceFlag(t *testing.T) {
	code, out := gold(t, "-seed", "7", "-n", "80", "-workers", "4", "-trace")
	if code != 0 {
		t.Fatalf("exit code %d (want 0)\n%s", code, out)
	}
	var r load.Report
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if r.Traces == nil {
		t.Fatal("-trace produced no traces section")
	}
	if r.Traces.ServerTraces != 80 {
		t.Errorf("ServerTraces = %d, want 80", r.Traces.ServerTraces)
	}
	if r.Traces.SumViolations != 0 {
		t.Errorf("SumViolations = %d, want 0", r.Traces.SumViolations)
	}
	// -trace implies timing: stage latency summaries must be present.
	if len(r.Traces.Stages) == 0 {
		t.Error("-trace did not include per-stage latencies")
	}
	if code, _ := gold(t, "-trace", "-sessions", "2"); code != 1 {
		t.Errorf("-trace with -sessions exited %d (want 1)", code)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-self", "-log-level", "bogus"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad -log-level exited %d (want 1)", code)
	}
}

// TestSLOGateExitCode: an impossible latency gate must trip exit code 2.
func TestSLOGateExitCode(t *testing.T) {
	code, out := gold(t, "-seed", "5", "-n", "40", "-conformance", "-slo-p99", "0.000000001")
	if code != 2 {
		t.Fatalf("exit code %d (want 2 on SLO violation)\n%s", code, out)
	}
	var r load.Report
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if r.SLO == nil || r.SLO.Pass || len(r.SLO.Violations) == 0 {
		t.Fatalf("SLO section does not record the violation: %+v", r.SLO)
	}
}

// TestChaosGateExitCodes is the end-to-end resilience acceptance: the
// same seeded chaos plan must fail the zero-error gate with exit 2 when
// retries are off, and pass it with exit 0 — zero conformance
// mismatches included — when retries exceed the burst bound.
func TestChaosGateExitCodes(t *testing.T) {
	base := []string{"-seed", "13", "-n", "200", "-workers", "4",
		"-chaos", "-conformance", "-slo-error-rate", "0"}

	code, out := gold(t, base...)
	if code != 2 {
		t.Fatalf("chaos without retries exited %d (want 2)\n%s", code, out)
	}
	var bare load.Report
	if err := json.Unmarshal(out, &bare); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if bare.Chaos == nil || bare.Chaos.Injected.Errors+bare.Chaos.Injected.Resets == 0 {
		t.Fatalf("chaos run injected nothing: %+v", bare.Chaos)
	}

	code, out = gold(t, append(base, "-retries", "4")...)
	if code != 0 {
		t.Fatalf("chaos with retries exited %d (want 0)\n%s", code, out)
	}
	var hardened load.Report
	if err := json.Unmarshal(out, &hardened); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if hardened.Conformance == nil || hardened.Conformance.Mismatches != 0 {
		t.Fatalf("conformance under chaos: %+v", hardened.Conformance)
	}
	if hardened.Resilience == nil || hardened.Resilience.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", hardened.Resilience)
	}
	if bare.StreamDigest != hardened.StreamDigest {
		t.Fatalf("retries changed the request stream: %s vs %s", bare.StreamDigest, hardened.StreamDigest)
	}
}

// TestFlagValidation covers CLI rejection paths.
func TestFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 1 {
		t.Errorf("no -url/-self exited %d (want 1)", code)
	}
	if code := run([]string{"-self", "-url", "http://x"}, &stdout, &stderr); code != 1 {
		t.Errorf("both -url and -self exited %d (want 1)", code)
	}
	if code := run([]string{"-self", "-mix", "bogus"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad -mix exited %d (want 1)", code)
	}
	if code := run([]string{"-self", "-policies", "NOPE"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown policy exited %d (want 1)", code)
	}
	if code := run([]string{"-self", "-ns", "1,x"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad -ns exited %d (want 1)", code)
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("compute=3,verify=2,simulate=1")
	if err != nil || m != (load.Mix{Compute: 3, Verify: 2, Simulate: 1}) {
		t.Fatalf("parseMix: %+v, %v", m, err)
	}
	for _, bad := range []string{"compute", "compute=-1", "walk=3", "compute=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}
