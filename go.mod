module pacds

go 1.24
