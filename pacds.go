// Package pacds is the public API of this repository: a library for
// computing power-aware connected dominating sets (CDS) in ad hoc wireless
// networks, after
//
//	Jie Wu, Ming Gao, Ivan Stojmenovic.
//	"On Calculating Power-Aware Connected Dominating Sets for Efficient
//	Routing in Ad Hoc Wireless Networks." ICPP 2001.
//
// The package re-exports the implementation packages' user-facing types
// and functions so downstream code needs a single import:
//
//	g := pacds.FromEdges(5, [][2]pacds.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
//	res, err := pacds.Compute(g, pacds.ND, nil)
//	// res.Gateway is a connected dominating set of g.
//
// Functional areas:
//
//   - Graphs: NewGraph, FromEdges, ReadGraph, WriteGraph and the Graph
//     methods (Neighbors, BFS, connectivity, induced subgraphs).
//   - CDS: Mark (the Wu-Li marking process), Compute / ApplyRules with the
//     five policies NR, ID, ND, EL1, EL2, invariant checkers VerifyCDS and
//     VerifyProperty3, and IncrementalMarker for localized updates.
//   - Random networks: RandomNetwork / RandomConnectedNetwork build
//     unit-disk topologies; mobility models move hosts.
//   - Energy: battery Levels and the drain models of the paper's three
//     traffic assumptions (plus premise-consistent per-gateway variants).
//   - Routing: NewRouter builds gateway membership lists and routing
//     tables and answers Route/Stretch queries (paper Section 2.1).
//   - Simulation: SimConfig / RunSim / RunSimTrials reproduce the paper's
//     lifetime experiment; the experiments subcommands regenerate every
//     figure.
//   - Distributed execution: RunDistributed executes the marking process
//     and rules as a message-passing protocol and reports its cost;
//     NewMaintenanceSession maintains the CDS across topology changes with
//     localized traffic; RunAsync studies unserialized rule application.
//   - Extensions: Rule-k pruning, packet-level traffic with per-hop
//     energy accounting, max-min energy routing, broadcast via CDS,
//     quasi-UDG and clustered deployments, SVG rendering.
//   - Serving & load: NewCDSServer / StartLocalCDSServer run the cdsd
//     service; RunLoad drives it with a deterministic seeded workload and
//     cross-checks responses against the library (see cmd/loadgen).
//   - Streaming sessions: NewTopologySessionManager maintains many
//     long-lived incremental CDS sessions (cdsd's /v1/sessions API);
//     RunSessionLoad streams deterministic delta batches at them and
//     replays every sampled snapshot against an in-process oracle.
//   - Resilience & chaos: NewResilientCDSClient wraps the client with
//     retries, deterministic backoff, a circuit breaker, and hedging;
//     NewChaosPlan / NewChaosTransport inject seeded L7 faults for
//     deterministic resilience soaks (loadgen -chaos).
package pacds

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"pacds/internal/broadcast"
	"pacds/internal/cds"
	"pacds/internal/chaos"
	"pacds/internal/des"
	"pacds/internal/distributed"
	"pacds/internal/energy"
	"pacds/internal/faults"
	"pacds/internal/geom"
	"pacds/internal/graph"
	"pacds/internal/load"
	"pacds/internal/metrics"
	"pacds/internal/mobility"
	"pacds/internal/obs"
	"pacds/internal/resilience"
	"pacds/internal/routing"
	"pacds/internal/server"
	"pacds/internal/sim"
	"pacds/internal/topo"
	"pacds/internal/traffic"
	"pacds/internal/udg"
	"pacds/internal/viz"
	"pacds/internal/xrand"
)

// --- Graphs ---

// Graph is an undirected simple graph over nodes [0, n).
type Graph = graph.Graph

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdges builds a graph with n nodes and the given undirected edges.
func FromEdges(n int, edges [][2]NodeID) *Graph { return graph.FromEdges(n, edges) }

// ReadGraph decodes a graph from the textual edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph encodes a graph in the textual edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// --- CDS policies and computation ---

// Policy selects the pruning rule set.
type Policy = cds.Policy

// The five policies of the paper's evaluation.
const (
	NR  = cds.NR  // marking process only, no rules
	ID  = cds.ID  // original Wu-Li Rules 1 and 2 (node ID)
	ND  = cds.ND  // Rules 1a/2a (node degree)
	EL1 = cds.EL1 // Rules 1b/2b (energy level, ID tie-break)
	EL2 = cds.EL2 // Rules 1b'/2b' (energy level, degree then ID tie-break)
)

// Policies lists all policies in the paper's order.
var Policies = cds.Policies

// PolicyByName parses a policy label ("NR", "ID", "ND", "EL1", "EL2").
func PolicyByName(name string) (Policy, error) { return cds.ByName(name) }

// CDSResult is the outcome of the marking process plus rule application.
type CDSResult = cds.Result

// Mark runs the Wu-Li marking process and returns the markers.
func Mark(g *Graph) []bool { return cds.Mark(g) }

// Compute runs the marking process and the policy's pruning rules. energy
// is required for EL1/EL2 (one level per node) and ignored otherwise.
func Compute(g *Graph, p Policy, energy []float64) (*CDSResult, error) {
	return cds.Compute(g, p, energy)
}

// ApplyRules applies a policy's rules to an existing marking snapshot.
func ApplyRules(g *Graph, p Policy, marked []bool, energy []float64) ([]bool, error) {
	return cds.ApplyRules(g, p, marked, energy)
}

// ComputeParallel is Compute with the marking and pruning passes fanned
// out across workers goroutines (0 = GOMAXPROCS, 1 = serial). The result
// is byte-identical to Compute at every worker count.
func ComputeParallel(g *Graph, p Policy, energy []float64, workers int) (*CDSResult, error) {
	return cds.ComputeParallel(g, p, energy, workers)
}

// VerifyCDS checks that gateway is a connected dominating set of g.
func VerifyCDS(g *Graph, gateway []bool) error { return cds.VerifyCDS(g, gateway) }

// VerifyProperty3 checks the paper's Property 3 for a marking: every pair
// of hosts has a shortest path whose interior is marked.
func VerifyProperty3(g *Graph, marked []bool) error { return cds.VerifyProperty3(g, marked) }

// IncrementalMarker maintains markers under edge updates, recomputing only
// the affected hosts (the paper's locality property).
type IncrementalMarker = cds.IncrementalMarker

// NewIncrementalMarker starts incremental tracking for g.
func NewIncrementalMarker(g *Graph) *IncrementalMarker { return cds.NewIncrementalMarker(g) }

// CDSReport summarizes backbone quality (size, diameter, cut vertices,
// first-hop redundancy).
type CDSReport = cds.Report

// AnalyzeCDS computes a quality report for a gateway assignment.
func AnalyzeCDS(g *Graph, gateway []bool) (*CDSReport, error) { return cds.Analyze(g, gateway) }

// --- Geometry and random networks ---

// Point is a 2-D location.
type Point = geom.Point

// Rect is an axis-aligned rectangle.
type Rect = geom.Rect

// Square returns the square [0, side] x [0, side].
func Square(side float64) Rect { return geom.Square(side) }

// Network is a generated unit-disk network instance: host positions plus
// the induced connectivity graph.
type Network = udg.Instance

// NetworkConfig describes a random unit-disk network.
type NetworkConfig = udg.Config

// PaperNetworkConfig returns the paper's parameters (100x100 field,
// radius 25) for n hosts.
func PaperNetworkConfig(n int) NetworkConfig { return udg.PaperConfig(n) }

// RNG is the deterministic random number generator used across the
// library.
type RNG = xrand.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// RandomNetwork places hosts uniformly at random and builds the unit-disk
// graph.
func RandomNetwork(c NetworkConfig, rng *RNG) (*Network, error) { return udg.Random(c, rng) }

// RandomConnectedNetwork samples random networks until one is connected.
func RandomConnectedNetwork(c NetworkConfig, rng *RNG, maxAttempts int) (*Network, error) {
	return udg.RandomConnected(c, rng, maxAttempts)
}

// BuildUnitDiskGraph constructs the unit-disk graph over fixed positions.
func BuildUnitDiskGraph(positions []Point, field Rect, radius float64) *Graph {
	return udg.Build(positions, field, radius)
}

// --- Mobility ---

// MobilityModel advances host positions by one update interval.
type MobilityModel = mobility.Model

// PaperMobility is the paper's 8-direction probabilistic hop model.
type PaperMobility = mobility.Paper

// NewPaperMobility returns the model with the paper's parameters
// (c = 0.5, l in [1..6], clamped boundaries).
func NewPaperMobility() *PaperMobility { return mobility.NewPaper() }

// RandomWalk and RandomWaypoint are extension mobility models.
type (
	RandomWalk     = mobility.RandomWalk
	RandomWaypoint = mobility.RandomWaypoint
	StaticHosts    = mobility.Static
)

// --- Energy ---

// DrainModel computes the per-gateway drain per update interval.
type DrainModel = energy.DrainModel

// Literal drain models from the paper (total traffic split across |G'|).
type (
	ConstantDrain  = energy.Constant
	LinearDrain    = energy.Linear
	QuadraticDrain = energy.Quadratic
)

// Premise-consistent per-gateway variants (see package energy).
type (
	ConstantPerGWDrain  = energy.ConstantPerGW
	LinearPerGWDrain    = energy.LinearPerGW
	QuadraticPerGWDrain = energy.QuadraticPerGW
)

// DrainByName parses a drain model name ("const", "linear", "quadratic",
// or a "-pergw" variant).
func DrainByName(name string) (DrainModel, error) { return energy.ByName(name) }

// EnergyLevels tracks per-host battery levels.
type EnergyLevels = energy.Levels

// NewEnergyLevels returns batteries for n hosts at the given initial
// level.
func NewEnergyLevels(n int, initial float64) *EnergyLevels { return energy.NewLevels(n, initial) }

// --- Routing ---

// Router answers dominating-set-based routing queries (paper Section 2.1).
type Router = routing.Router

// RoutingTableEntry is one row of a gateway routing table (Figure 2c).
type RoutingTableEntry = routing.TableEntry

// NewRouter builds a router for a topology and gateway assignment.
func NewRouter(g *Graph, gateway []bool) (*Router, error) { return routing.New(g, gateway) }

// DVStats reports the cost of distributed routing-table construction.
type DVStats = routing.DVStats

// BuildTablesDistanceVector constructs the gateway routing tables the
// distributed way — distance-vector exchange over backbone links — and
// returns the pairwise gateway distances plus protocol cost. The result
// equals the centrally-built tables (tested exhaustively).
func BuildTablesDistanceVector(g *Graph, gateway []bool) ([][]int, DVStats, error) {
	return routing.BuildTablesDistanceVector(g, gateway)
}

// --- Simulation ---

// SimConfig parameterizes a lifetime simulation run.
type SimConfig = sim.Config

// SimMetrics reports the outcome of one run.
type SimMetrics = sim.Metrics

// SimTrialStats aggregates metrics across trials.
type SimTrialStats = sim.TrialStats

// PaperSimConfig returns the paper's lifetime-simulation parameters.
func PaperSimConfig(n int, p Policy, drain DrainModel, seed uint64) SimConfig {
	return sim.PaperConfig(n, p, drain, seed)
}

// RunSim executes one lifetime simulation.
func RunSim(cfg SimConfig) (*SimMetrics, error) { return sim.Run(cfg) }

// RunSimTrials executes several independent runs and aggregates them.
func RunSimTrials(cfg SimConfig, trials int) (*SimTrialStats, error) {
	return sim.RunTrials(cfg, trials)
}

// --- Distributed execution ---

// DistributedStats reports message-passing protocol costs.
type DistributedStats = distributed.Stats

// RunDistributed executes the marking process and rules as a synchronous
// message-passing protocol, using only per-host local knowledge, and
// returns the gateway assignment plus protocol costs. The result always
// equals Compute's (tested exhaustively in the distributed package).
func RunDistributed(g *Graph, p Policy, energy []float64) ([]bool, DistributedStats, error) {
	return distributed.Run(g, p, energy)
}

// --- Extensions beyond the paper ---

// ApplyRuleK applies the Rule-k generalization (coverage by any connected
// set of higher-priority marked neighbors) — the lineage of the paper's
// future work. See internal/cds/rulek.go.
func ApplyRuleK(g *Graph, p Policy, marked []bool, energy []float64) ([]bool, error) {
	return cds.ApplyRuleK(g, p, marked, energy)
}

// RunSimTrialsParallel is RunSimTrials across a worker pool; results are
// bit-identical to the sequential version for the same configuration.
func RunSimTrialsParallel(cfg SimConfig, trials, workers int) (*SimTrialStats, error) {
	return sim.RunTrialsParallel(cfg, trials, workers)
}

// TrafficConfig parameterizes the packet-level simulation, where
// forwarding work (per-hop tx/rx costs) drains the hosts that perform it.
type TrafficConfig = traffic.Config

// TrafficMetrics reports a packet-level run's outcome.
type TrafficMetrics = traffic.Metrics

// TrafficFlow is one constant-bit-rate conversation.
type TrafficFlow = traffic.Flow

// PaperTrafficConfig returns a packet-level configuration on the paper's
// field with a moderate constant-bit-rate load.
func PaperTrafficConfig(n int, p Policy, seed uint64) TrafficConfig {
	return traffic.PaperConfig(n, p, seed)
}

// RunTraffic executes one packet-level simulation.
func RunTraffic(cfg TrafficConfig) (*TrafficMetrics, error) { return traffic.Run(cfg) }

// ApplyRulesFixpoint iterates a policy's rules to a fixpoint. Because
// every rule's eligibility is monotone non-decreasing in the gateway set
// and rule application only shrinks it, the single sequential pass is
// already the fixpoint — no confirming re-scan is needed (see
// internal/cds/fixpoint.go for the theorem).
func ApplyRulesFixpoint(g *Graph, p Policy, marked []bool, energy []float64) ([]bool, int, error) {
	return cds.ApplyRulesFixpoint(g, p, marked, energy)
}

// ReapplyRulesDirty re-examines the given dirty nodes against the current
// gateway set and cascades removals through a dirty-queue drain over their
// 1-hop fringes — the incremental re-pruning primitive for callers whose
// topology or energy inputs changed locally. gw is modified in place; it
// remains a valid CDS whatever dirty set is passed.
func ReapplyRulesDirty(g *Graph, p Policy, gw []bool, energy []float64, dirty []NodeID) (int, error) {
	return cds.ReapplyRulesDirty(g, p, gw, energy, dirty)
}

// ExtendedSimMetrics reports a lifetime run continued past the first
// death (death timeline, half-death interval).
type ExtendedSimMetrics = sim.ExtendedMetrics

// RunSimExtended continues a lifetime simulation until the alive fraction
// drops below stopAliveFrac, with dead hosts removed from the topology.
func RunSimExtended(cfg SimConfig, stopAliveFrac float64) (*ExtendedSimMetrics, error) {
	return sim.RunExtended(cfg, stopAliveFrac)
}

// MaintenanceSession maintains a CDS across topology changes with
// localized message traffic (paper Section 2.2).
type MaintenanceSession = distributed.Session

// EdgeChange is one link-layer event fed to a MaintenanceSession.
type EdgeChange = distributed.EdgeChange

// NewMaintenanceSession bootstraps a maintenance session with the full
// protocol; subsequent topology changes cost only localized messages.
func NewMaintenanceSession(g *Graph, p Policy, energy []float64) (*MaintenanceSession, error) {
	return distributed.NewSession(g, p, energy)
}

// ClusterConfig parameterizes hotspot (non-uniform) host placement.
type ClusterConfig = udg.ClusterConfig

// RandomClusteredNetwork generates a hotspot-deployed instance.
func RandomClusteredNetwork(c NetworkConfig, cc ClusterConfig, rng *RNG) (*Network, error) {
	return udg.RandomClustered(c, cc, rng)
}

// RandomClusteredConnectedNetwork samples hotspot instances until one is
// connected.
func RandomClusteredConnectedNetwork(c NetworkConfig, cc ClusterConfig, rng *RNG, maxAttempts int) (*Network, error) {
	return udg.RandomClusteredConnected(c, cc, rng, maxAttempts)
}

// RenderSVG draws a network snapshot (positions, links, gateway backbone,
// optional energy rings) as SVG.
func RenderSVG(w io.Writer, g *Graph, positions []Point, field Rect,
	gateway []bool, energy []float64, opt RenderOptions) error {
	return viz.SVG(w, g, positions, field, gateway, energy, opt)
}

// RenderOptions controls RenderSVG.
type RenderOptions = viz.Options

// BroadcastMetrics reports one network-wide dissemination.
type BroadcastMetrics = broadcast.Metrics

// Flood disseminates a message from src with every host relaying (blind
// flooding).
func Flood(g *Graph, src NodeID) BroadcastMetrics { return broadcast.Flood(g, src) }

// BroadcastViaCDS disseminates from src with only gateway hosts relaying —
// the canonical CDS application; reaches the same coverage with |G'| + 1
// transmissions instead of N.
func BroadcastViaCDS(g *Graph, src NodeID, gateway []bool) (BroadcastMetrics, error) {
	return broadcast.ViaCDS(g, src, gateway)
}

// BroadcastSaving returns the fraction of transmissions the CDS broadcast
// avoids relative to flooding.
func BroadcastSaving(flood, cds BroadcastMetrics) float64 { return broadcast.Saving(flood, cds) }

// QuasiNetworkConfig describes a quasi unit-disk network (reliable inner
// radius, probabilistic transition zone, hard outer radius).
type QuasiNetworkConfig = udg.QuasiConfig

// PaperQuasiNetworkConfig brackets the paper's radius 25 with RMin=20,
// RMax=30, zone probability 0.5.
func PaperQuasiNetworkConfig(n int) QuasiNetworkConfig { return udg.PaperQuasiConfig(n) }

// RandomQuasiNetwork generates a quasi unit-disk instance.
func RandomQuasiNetwork(c QuasiNetworkConfig, rng *RNG) (*Network, error) {
	return udg.RandomQuasi(c, rng)
}

// RandomQuasiConnectedNetwork samples quasi instances until one is
// connected.
func RandomQuasiConnectedNetwork(c QuasiNetworkConfig, rng *RNG, maxAttempts int) (*Network, error) {
	return udg.RandomQuasiConnected(c, rng, maxAttempts)
}

// ApplyRulesOrdered applies a policy's rules under an explicit processing
// order (any permutation yields a valid CDS; see internal/cds/order.go).
func ApplyRulesOrdered(g *Graph, p Policy, marked []bool, energy []float64, order []NodeID) ([]bool, error) {
	return cds.ApplyRulesOrdered(g, p, marked, energy, order)
}

// AsyncConfig parameterizes a fully asynchronous (discrete-event) rule
// application with random evaluation times and transmission delays.
type AsyncConfig = des.Config

// AsyncResult reports an asynchronous execution, including whether the
// final set violated the CDS property (the failure mode the serialized
// semantics prevents).
type AsyncResult = des.Result

// DefaultAsyncConfig returns the adversarial-delay asynchronous setup.
func DefaultAsyncConfig(p Policy, seed uint64) AsyncConfig { return des.DefaultConfig(p, seed) }

// RunAsync executes the rule phase asynchronously over g.
func RunAsync(g *Graph, cfg AsyncConfig, energy []float64) (*AsyncResult, error) {
	return des.Run(g, cfg, energy)
}

// DistributedSimMetrics reports a lifetime simulation executed end-to-end
// through the message-passing maintenance session, including the
// cumulative protocol cost.
type DistributedSimMetrics = sim.DistributedMetrics

// RunSimDistributed runs the paper's lifetime experiment through the
// distributed maintenance session; the maintained gateway set is checked
// against the centralized computation every interval.
func RunSimDistributed(cfg SimConfig) (*DistributedSimMetrics, error) {
	return sim.RunDistributed(cfg)
}

// ChurnSimConfig adds on/off switching (the paper's "special form of
// mobility") to a lifetime simulation.
type ChurnSimConfig = sim.ChurnConfig

// ChurnSimMetrics reports a churn run.
type ChurnSimMetrics = sim.ChurnMetrics

// RunSimChurn executes a lifetime simulation where hosts power down and
// return probabilistically, saving battery while off.
func RunSimChurn(cfg ChurnSimConfig) (*ChurnSimMetrics, error) { return sim.RunChurn(cfg) }

// --- Fault tolerance ---

// FaultConfig declares a deterministic fault plan: message loss,
// duplication, delay/reordering, transient link down-time, and scheduled
// host crashes. See internal/faults.
type FaultConfig = faults.Config

// Crash schedules one host failure (and optional recovery) by round.
type Crash = faults.Crash

// FaultPlan is a compiled, replayable fault schedule.
type FaultPlan = faults.Plan

// NewFaultPlan validates cfg and compiles it into a plan. Every fault is
// a pure function of the seed and the delivery coordinates, so a failing
// run replays exactly.
func NewFaultPlan(cfg FaultConfig) (*FaultPlan, error) { return faults.NewPlan(cfg) }

// HardenedConfig parameterizes the fault-tolerant distributed protocol.
type HardenedConfig = distributed.HardenedConfig

// HardenedResult is the finalized outcome of a hardened run.
type HardenedResult = distributed.HardenedResult

// RunDistributedHardened executes the marking process and rules over a
// faulty radio: sequence-numbered messages with ACK/retransmission,
// HELLO-timeout neighbor eviction, commit-on-ACK unmarks, and healing
// epochs. With zero faults the result is bit-identical to Compute; under
// faults the finalized set is a CDS of the surviving subgraph (verify
// with VerifySurvivorCDS).
func RunDistributedHardened(g *Graph, p Policy, energy []float64, cfg HardenedConfig) (*HardenedResult, error) {
	return distributed.RunHardened(g, p, energy, cfg)
}

// ErrStale reports a maintenance-session input assembled against an
// outdated topology snapshot; recoverable (re-snapshot and resubmit).
// Test with errors.Is.
var ErrStale = distributed.ErrStale

// VerifySurvivorCDS checks the graceful-degradation invariant: gateway
// restricted to the alive hosts is a CDS of the surviving subgraph.
func VerifySurvivorCDS(g *Graph, alive, gateway []bool) error {
	return cds.VerifySurvivorCDS(g, alive, gateway)
}

// --- Serving (cdsd) ---

// CanonicalGraph returns the canonical byte encoding of g: two graphs
// are equal iff their canonical encodings are byte-identical. The serving
// layer keys its result cache on a hash of this encoding.
func CanonicalGraph(g *Graph) []byte { return graph.Canonical(g) }

// GraphDigest returns the 64-bit FNV-1a fingerprint of g's canonical
// encoding — a cheap topology cache key.
func GraphDigest(g *Graph) uint64 { return graph.Digest(g) }

// ServerConfig parameterizes the cdsd serving subsystem (worker pool
// size, queue depth, cache capacity, deadlines, energy quantization).
type ServerConfig = server.Config

// CDSServer is the cdsd service: an HTTP/JSON API over Compute, RunSim,
// and VerifyCDS with a bounded worker pool, an LRU result cache keyed on
// the canonical graph digest, coalescing of identical in-flight requests,
// graceful drain, and a Prometheus-text /metrics endpoint. See
// cmd/cdsd for the standalone daemon.
type CDSServer = server.Server

// NewCDSServer starts the serving machinery (worker pool, cache); expose
// it with its Handler method and stop it with Shutdown or Close.
func NewCDSServer(cfg ServerConfig) *CDSServer { return server.New(cfg) }

// CDSClient is a typed HTTP client for a cdsd server.
type CDSClient = server.Client

// NewCDSClient returns a client for the cdsd server at baseURL.
// httpClient may be nil for a default with a 30s timeout.
func NewCDSClient(baseURL string, httpClient *http.Client) *CDSClient {
	return server.NewClient(baseURL, httpClient)
}

// ResilientCDSClient wraps a CDSClient with retries, deterministic
// seeded backoff, a circuit breaker, a retry budget, and optional
// hedging. It retries only errors that plausibly heal (5xx, 429,
// transport resets) and honors the server's Retry-After hint.
type ResilientCDSClient = server.ResilientClient

// ResilienceConfig parameterizes a ResilientCDSClient.
type ResilienceConfig = server.ResilienceConfig

// NewResilientCDSClient wraps c with the given resilience policy.
func NewResilientCDSClient(c *CDSClient, cfg ResilienceConfig) *ResilientCDSClient {
	return server.NewResilientClient(c, cfg)
}

// RetryBackoff computes exponential retry delays with deterministic
// seeded jitter: the delay is a pure function of (seed, call, attempt),
// so equal seeds replay byte-identical schedules.
type RetryBackoff = resilience.Backoff

// CircuitBreaker is a three-state (closed/open/half-open) circuit
// breaker with a bounded half-open probe budget.
type CircuitBreaker = resilience.Breaker

// CircuitBreakerConfig parameterizes a CircuitBreaker.
type CircuitBreakerConfig = resilience.BreakerConfig

// NewCircuitBreaker returns a closed breaker.
func NewCircuitBreaker(cfg CircuitBreakerConfig) *CircuitBreaker {
	return resilience.NewBreaker(cfg)
}

// ChaosConfig parameterizes the deterministic L7 fault injector: seeded
// per-(index, attempt) latency spikes, bounded 5xx bursts, connection
// resets, and slow response bodies.
type ChaosConfig = chaos.Config

// ChaosPlan is an immutable deterministic chaos oracle; wrap an HTTP
// transport with NewChaosTransport or a handler with chaos.Middleware.
type ChaosPlan = chaos.Plan

// NewChaosPlan validates cfg and builds a plan.
func NewChaosPlan(cfg ChaosConfig) (*ChaosPlan, error) { return chaos.NewPlan(cfg) }

// NewChaosTransport wraps base (nil = http.DefaultTransport) with the
// plan's fault injection. Only requests tagged via WithChaosIndex are
// eligible, so probes and scrapes stay clean.
func NewChaosTransport(plan *ChaosPlan, base http.RoundTripper) http.RoundTripper {
	return chaos.NewTransport(plan, base)
}

// WithChaosIndex tags ctx with a request's stream index, making requests
// issued under it eligible for a chaos transport's fault injection. The
// index is the deterministic coordinate of the request's fate.
func WithChaosIndex(ctx context.Context, index int) context.Context {
	return chaos.WithIndex(ctx, index)
}

// Wire types of the cdsd HTTP/JSON API.
type (
	ServerGraphSpec        = server.GraphSpec
	ServerComputeRequest   = server.ComputeRequest
	ServerComputeResponse  = server.ComputeResponse
	ServerVerifyRequest    = server.VerifyRequest
	ServerVerifyResponse   = server.VerifyResponse
	ServerSimulateRequest  = server.SimulateRequest
	ServerSimulateResponse = server.SimulateResponse
	ServerFaultSpec        = server.FaultSpec
	ServerCrashSpec        = server.CrashSpec
	ServerPolicyInfo       = server.PolicyInfo
	ServerReadiness        = server.ReadinessResponse
)

// --- Streaming topology sessions ---

// TopologySessionManager owns cdsd's long-lived incremental CDS sessions:
// lock-striped shards, admission limits with LRU eviction, an idle-TTL
// reaper, and per-session since-epoch change summaries. Each session
// wraps a MaintenanceSession (paper Section 2.2 localized maintenance).
type TopologySessionManager = topo.Manager

// TopologySessionConfig parameterizes a TopologySessionManager.
type TopologySessionConfig = topo.Config

// TopologySessionSnapshot is the full state of one session at an epoch.
type TopologySessionSnapshot = topo.Snapshot

// TopologySessionSummary aggregates the changes since a client-held epoch.
type TopologySessionSummary = topo.Summary

// NewTopologySessionManager starts the session subsystem (cdsd embeds one;
// standalone use is for tests and tools). Stop it with Close.
func NewTopologySessionManager(cfg TopologySessionConfig) *TopologySessionManager {
	return topo.NewManager(cfg)
}

// Sentinel errors of the session subsystem; test with errors.Is.
var (
	ErrSessionNotFound = topo.ErrNotFound // unknown, reaped, or evicted id
	ErrSessionInvalid  = topo.ErrInvalid  // malformed graph, batch, or energy input
	ErrSessionLimit    = topo.ErrLimit    // admission refused at capacity
)

// Wire types of the cdsd /v1/sessions HTTP/JSON API.
type (
	ServerSessionCreateRequest  = server.SessionCreateRequest
	ServerSessionChangesRequest = server.SessionChangesRequest
	ServerSessionEdgeChange     = server.SessionEdgeChange
	ServerSessionResponse       = server.SessionResponse
	ServerSessionChangeSummary  = server.SessionChangeSummary
	ServerSessionStats          = server.SessionStats
)

// LocalCDSServer is a cdsd instance bound to an ephemeral loopback
// listener — a real HTTP server without picking a port, for tests,
// examples, and self-driven load runs.
type LocalCDSServer = server.Local

// StartLocalCDSServer boots a server on 127.0.0.1:0 and serves it; stop
// it with Close.
func StartLocalCDSServer(cfg ServerConfig) (*LocalCDSServer, error) {
	return server.StartLocal(cfg)
}

// --- Load & conformance harness (loadgen) ---

// LoadOptions configures a deterministic load run: the request stream is
// a pure function of (options, seed, index), so the same seed issues the
// same requests — and reaches the same conformance verdicts — at any
// worker count. See cmd/loadgen for the CLI.
type LoadOptions = load.Options

// LoadMix weights the compute/verify/simulate request kinds.
type LoadMix = load.Mix

// LoadAxes are the workload dimensions (topology sizes, radii, policies).
type LoadAxes = load.Axes

// LoadSLO declares the pass/fail gates a load run must meet.
type LoadSLO = load.SLO

// LoadReport is the machine-readable outcome of a load run (the
// LOAD_*.json artifact), including per-endpoint outcome counts, the
// conformance cross-check, and the /metrics cache delta.
type LoadReport = load.Report

// LoadMismatch is one conformance divergence between a cdsd response and
// the in-process oracle.
type LoadMismatch = load.Mismatch

// RunLoad drives the cdsd server at baseURL with the configured seeded
// workload and assembles the report. With Conformance set, sampled
// responses are recomputed in-process through the same library entry
// points the handlers use and compared field by field.
func RunLoad(ctx context.Context, baseURL string, opts LoadOptions) (*LoadReport, error) {
	return load.Run(ctx, baseURL, opts)
}

// GenerateLoadRequest synthesizes request i of a load stream — a pure
// function of (opts, i), exposed for tools that need to inspect or replay
// a stream outside Run. opts must be the same value Run was (or will be)
// given.
func GenerateLoadRequest(opts LoadOptions, i int) *load.Request { return load.Generate(opts, i) }

// SessionLoadOptions configures a streaming-session load run: concurrent
// sessions, delta batches per session, and the conformance oracle. Every
// session's initial topology and batch stream is a pure function of
// (options, session index, batch index).
type SessionLoadOptions = load.SessionOptions

// SessionLoadReport summarizes the session-specific outcomes of a run
// (batches applied, link changes streamed, snapshots taken, desyncs).
type SessionLoadReport = load.SessionsReport

// RunSessionLoad drives cdsd's /v1/sessions API with the configured
// deterministic delta streams. With Conformance set, every sampled
// snapshot is replayed against an in-process MaintenanceSession fed the
// identical history and compared field by field (exact equality is sound
// because maintained-protocol outcomes are deterministic for a shared
// history; see DESIGN.md section 12).
func RunSessionLoad(ctx context.Context, baseURL string, opts SessionLoadOptions) (*LoadReport, error) {
	return load.RunSessions(ctx, baseURL, opts)
}

// SessionLoadStreamDigest fingerprints the entire synthesized session
// workload (topologies, batches, energy updates); equal options yield
// equal digests at any worker count.
func SessionLoadStreamDigest(opts SessionLoadOptions) uint64 {
	return load.SessionStreamDigest(opts)
}

// MetricsSample is one parsed Prometheus exposition sample.
type MetricsSample = metrics.Sample

// MetricsScrape is a parsed /metrics exposition.
type MetricsScrape = metrics.Scrape

// ParseMetricsText parses a Prometheus text exposition (as served by
// cdsd's /metrics) into samples queryable by name and labels.
func ParseMetricsText(r io.Reader) (MetricsScrape, error) { return metrics.ParseText(r) }

// --- Observability (tracing & structured logging) ---

// TracerConfig parameterizes a request tracer: ring capacity (0 disables
// tracing entirely), lock-stripe count, id seed, and an injectable clock
// for deterministic span trees. Pass one in ServerConfig.Tracing to give
// a cdsd a /debug/traces ring.
type TracerConfig = obs.TracerConfig

// Tracer records request traces into a bounded in-process ring. A nil
// Tracer is valid and ignores every call, so instrumented code pays
// nothing when tracing is disabled.
type Tracer = obs.Tracer

// TraceRecord is one completed request trace: id, name, status, root
// attributes, and the flat list of stage spans.
type TraceRecord = obs.TraceRecord

// TraceSpanRecord is one completed stage span within a trace.
type TraceSpanRecord = obs.SpanRecord

// TraceFilter selects traces from a ring snapshot (by name, id, minimum
// duration, last-n).
type TraceFilter = obs.Filter

// NewTracer returns a tracer retaining the last cfg.Capacity completed
// traces, or nil (tracing disabled) when cfg.Capacity <= 0.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// FormatTraceID renders a trace id as the 16-hex-digit wire form carried
// in the X-Trace-Id header; ParseTraceID is its inverse.
func FormatTraceID(id uint64) string { return obs.FormatTraceID(id) }

// ParseTraceID parses the 16-hex-digit wire form of a trace id.
func ParseTraceID(s string) (uint64, bool) { return obs.ParseTraceID(s) }

// NewLogger returns a leveled key=value text logger writing to w —
// the logger cdsd and loadgen use. LoggerOptions.NoTime drops the time
// attribute for byte-reproducible output.
func NewLogger(w io.Writer, opts LoggerOptions) *slog.Logger { return obs.NewLogger(w, opts) }

// LoggerOptions shape NewLogger's output.
type LoggerOptions = obs.LoggerOptions

// ParseLogLevel maps a -log-level flag value (debug, info, warn, error)
// onto a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLevel(s) }

// LoadTraceID derives the deterministic trace id the load harness pins
// on request i of a traced run (LoadOptions.Trace) — a pure function of
// (seed, index), never zero.
func LoadTraceID(seed uint64, i int) uint64 { return load.TraceID(seed, i) }
