package pacds_test

import (
	"fmt"
	"log"

	"pacds"
)

// The examples below are verified by `go test`: the Output comments are
// exact. All randomness flows from explicit seeds through the library's
// own deterministic generator, so the outputs are stable across platforms
// and Go versions.

// ExampleCompute runs the marking process and the original ID rules on
// the paper's Figure 1 network.
func ExampleCompute() {
	// 0=u 1=v 2=w 3=x 4=y from the paper's Figure 1.
	g := pacds.FromEdges(5, [][2]pacds.NodeID{
		{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3},
	})
	res, err := pacds.Compute(g, pacds.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("marked:", res.GatewayIDs())
	fmt.Println("is CDS:", pacds.VerifyCDS(g, res.Gateway) == nil)
	// Output:
	// marked: [1 2]
	// is CDS: true
}

// ExampleCompute_energyAware shows the energy-level rules relieving a
// weak host of gateway duty.
func ExampleCompute_energyAware() {
	// A 4-clique minus one edge: hosts 1 and 2 both cover everything.
	g := pacds.FromEdges(4, [][2]pacds.NodeID{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3},
	})
	strong := []float64{100, 90, 40, 100} // host 2 nearly drained
	res, err := pacds.Compute(g, pacds.EL1, strong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gateways:", res.GatewayIDs())
	// Output:
	// gateways: [1]
}

// ExampleMark demonstrates the raw marking process on a path: interior
// hosts have unconnected neighbors, endpoints do not.
func ExampleMark() {
	g := pacds.FromEdges(4, [][2]pacds.NodeID{{0, 1}, {1, 2}, {2, 3}})
	fmt.Println(pacds.Mark(g))
	// Output:
	// [false true true false]
}

// ExampleNewRouter routes a packet through the connected dominating set.
func ExampleNewRouter() {
	// Two clusters bridged by gateways 2 and 5.
	g := pacds.FromEdges(7, [][2]pacds.NodeID{
		{0, 2}, {1, 2}, {2, 5}, {3, 5}, {4, 5}, {6, 5},
	})
	router, err := pacds.NewRouter(g, []bool{false, false, true, false, false, true, false})
	if err != nil {
		log.Fatal(err)
	}
	path, err := router.Route(0, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("route:", path)
	fmt.Println("members of gateway 5:", router.MembershipList(5))
	// Output:
	// route: [0 2 5 6]
	// members of gateway 5: [3 4 6]
}

// ExampleRunDistributed executes the algorithm as a message-passing
// protocol and confirms it matches the centralized result.
func ExampleRunDistributed() {
	g := pacds.FromEdges(5, [][2]pacds.NodeID{
		{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3},
	})
	gw, stats, err := pacds.RunDistributed(g, pacds.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := pacds.Compute(g, pacds.ID, nil)
	same := true
	for v := range gw {
		if gw[v] != want.Gateway[v] {
			same = false
		}
	}
	fmt.Println("matches centralized:", same)
	fmt.Println("rounds:", stats.Rounds)
	// Output:
	// matches centralized: true
	// rounds: 3
}

// ExampleFlood compares blind flooding with CDS-based broadcast.
func ExampleFlood() {
	// A star: the hub alone dominates.
	g := pacds.FromEdges(6, [][2]pacds.NodeID{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
	})
	res, _ := pacds.Compute(g, pacds.ID, nil)
	flood := pacds.Flood(g, 1)
	via, _ := pacds.BroadcastViaCDS(g, 1, res.Gateway)
	fmt.Printf("flooding: %d transmissions, CDS: %d transmissions\n",
		flood.Transmissions, via.Transmissions)
	// Output:
	// flooding: 6 transmissions, CDS: 2 transmissions
}

// ExampleRunSim runs one lifetime simulation with the paper's parameters.
func ExampleRunSim() {
	cfg := pacds.PaperSimConfig(20, pacds.EL1, pacds.LinearDrain{}, 42)
	m, err := pacds.RunSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network survived intervals:", m.Intervals > 0)
	fmt.Println("run truncated:", m.Truncated)
	// Output:
	// network survived intervals: true
	// run truncated: false
}

// ExampleIncrementalMarker shows localized marker maintenance: one edge
// change recomputes only the affected hosts.
func ExampleIncrementalMarker() {
	g := pacds.FromEdges(4, [][2]pacds.NodeID{{0, 1}, {1, 2}, {2, 3}})
	im := pacds.NewIncrementalMarker(g)
	fmt.Println("before:", im.Marked())
	im.AddEdge(0, 3) // close the cycle
	fmt.Println("dirty hosts:", im.PendingDirty())
	fmt.Println("after: ", im.Marked())
	// Output:
	// before: [false true true false]
	// dirty hosts: 2
	// after:  [true true true true]
}
