package pacds

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// The facade tests double as end-to-end exercises of the public API: they
// touch only identifiers exported by this package.

func TestFacadeComputeCDS(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3}})
	res, err := Compute(g, NR, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGateways() != 2 {
		t.Fatalf("gateways = %v", res.GatewayIDs())
	}
	if err := VerifyCDS(g, res.Gateway); err != nil {
		t.Fatal(err)
	}
	if err := VerifyProperty3(g, res.Marked); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// Generate network -> compute CDS -> route -> simulate.
	net, err := RandomConnectedNetwork(PaperNetworkConfig(30), NewRNG(1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(net.Graph, ND, nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(net.Graph, res.Gateway)
	if err != nil {
		t.Fatal(err)
	}
	path, err := router.Route(0, 29)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 1 || path[0] != 0 {
		t.Fatalf("path = %v", path)
	}

	cfg := PaperSimConfig(20, EL1, LinearDrain{}, 9)
	m, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Intervals <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFacadeDistributed(t *testing.T) {
	net, err := RandomConnectedNetwork(PaperNetworkConfig(25), NewRNG(2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	gw, stats, err := RunDistributed(net.Graph, ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages == 0 || stats.Rounds == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	want, err := Compute(net.Graph, ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range gw {
		if gw[v] != want.Gateway[v] {
			t.Fatalf("distributed != centralized at node %d", v)
		}
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 4 || got.NumEdges() != 3 {
		t.Fatalf("round trip: %d nodes %d edges", got.NumNodes(), got.NumEdges())
	}
}

func TestFacadeNames(t *testing.T) {
	p, err := PolicyByName("EL2")
	if err != nil || p != EL2 {
		t.Fatalf("PolicyByName: %v %v", p, err)
	}
	d, err := DrainByName("quadratic-pergw")
	if err != nil || d.Name() != "quadratic-pergw" {
		t.Fatalf("DrainByName: %v %v", d, err)
	}
}

func TestFacadeIncrementalMarker(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	im := NewIncrementalMarker(g)
	before := append([]bool(nil), im.Marked()...)
	im.AddEdge(0, 3)
	after := im.Marked()
	same := true
	for i := range after {
		if after[i] != before[i] {
			same = false
		}
	}
	if same {
		t.Fatal("closing the cycle should change some markers")
	}
}

func TestFacadeRuleK(t *testing.T) {
	net, err := RandomConnectedNetwork(PaperNetworkConfig(30), NewRNG(5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	marked := Mark(net.Graph)
	gw, err := ApplyRuleK(net.Graph, ND, marked, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCDS(net.Graph, gw); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTraffic(t *testing.T) {
	cfg := PaperTrafficConfig(15, ND, 9)
	m, err := RunTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offered != m.Delivered+m.Dropped {
		t.Fatalf("conservation: %+v", m)
	}
}

func TestFacadeParallelTrials(t *testing.T) {
	cfg := PaperSimConfig(12, ND, LinearDrain{}, 3)
	seq, err := RunSimTrials(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSimTrialsParallel(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Lifetime {
		if seq.Lifetime[i] != par.Lifetime[i] {
			t.Fatal("parallel trials diverged from sequential")
		}
	}
}

func TestFacadeEnergyAndMobility(t *testing.T) {
	levels := NewEnergyLevels(5, 100)
	if levels.N() != 5 {
		t.Fatal("levels wrong")
	}
	var m MobilityModel = NewPaperMobility()
	pts := []Point{{X: 50, Y: 50}}
	m.Step(pts, Square(100), NewRNG(3))
	// Static model compiles through the alias too.
	var s MobilityModel = StaticHosts{}
	s.Step(pts, Square(100), NewRNG(4))
}

func TestFacadeMaintenanceSession(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	s, err := NewMaintenanceSession(g, ND, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyChanges([]EdgeChange{{A: 0, B: 4, Up: true}}); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 4)
	want, err := Compute(g, ND, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Gateways()
	for v := range got {
		if got[v] != want.Gateway[v] {
			t.Fatalf("session diverged at node %d", v)
		}
	}
}

func TestFacadeExtendedSim(t *testing.T) {
	cfg := PaperSimConfig(15, ND, LinearDrain{}, 7)
	m, err := RunSimExtended(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.FirstDeath <= 0 || m.HalfDeath < m.FirstDeath {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFacadeFixpointAndClustered(t *testing.T) {
	net, err := RandomClusteredConnectedNetwork(PaperNetworkConfig(40),
		ClusterConfig{Clusters: 3, Spread: 10}, NewRNG(13), 2000)
	if err != nil {
		t.Fatal(err)
	}
	marked := Mark(net.Graph)
	gw, passes, err := ApplyRulesFixpoint(net.Graph, ND, marked, nil)
	if err != nil {
		t.Fatal(err)
	}
	if passes < 1 {
		t.Fatalf("passes = %d", passes)
	}
	if err := VerifyCDS(net.Graph, gw); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRenderSVG(t *testing.T) {
	net, err := RandomConnectedNetwork(PaperNetworkConfig(12), NewRNG(17), 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(net.Graph, ND, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = RenderSVG(&buf, net.Graph, net.Positions, net.Config.Field,
		res.Gateway, nil, RenderOptions{Title: "facade"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("</svg>")) {
		t.Fatal("no svg output")
	}
}

func TestFacadeBroadcast(t *testing.T) {
	net, err := RandomConnectedNetwork(PaperNetworkConfig(30), NewRNG(19), 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(net.Graph, ND, nil)
	if err != nil {
		t.Fatal(err)
	}
	flood := Flood(net.Graph, 0)
	via, err := BroadcastViaCDS(net.Graph, 0, res.Gateway)
	if err != nil {
		t.Fatal(err)
	}
	if via.Reached != 30 || flood.Reached != 30 {
		t.Fatalf("coverage: flood %d cds %d", flood.Reached, via.Reached)
	}
	if BroadcastSaving(flood, via) <= 0 {
		t.Fatal("CDS broadcast saved nothing")
	}
}

func TestFacadeMaxMinRouting(t *testing.T) {
	g := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	r, err := NewRouter(g, []bool{false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.RouteMaxMin(0, 3, []float64{100, 10, 90, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("path = %v, want relay 2", path)
	}
}

func TestFacadeRemainingSurface(t *testing.T) {
	// Exercise the remaining thin wrappers end to end.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	marked := Mark(g)
	gw, err := ApplyRules(g, ND, marked, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCDS(g, gw); err != nil {
		t.Fatal(err)
	}
	order := []NodeID{3, 2, 1, 0}
	gwo, err := ApplyRulesOrdered(g, ND, marked, nil, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCDS(g, gwo); err != nil {
		t.Fatal(err)
	}

	net, err := RandomNetwork(PaperNetworkConfig(20), NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := BuildUnitDiskGraph(net.Positions, net.Config.Field, net.Config.Radius)
	if rebuilt.NumEdges() != net.Graph.NumEdges() {
		t.Fatal("BuildUnitDiskGraph disagrees with instance graph")
	}

	cnet, err := RandomClusteredNetwork(PaperNetworkConfig(20), ClusterConfig{Clusters: 2, Spread: 8}, NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	if cnet.Graph.NumNodes() != 20 {
		t.Fatal("clustered network wrong size")
	}

	qc := PaperQuasiNetworkConfig(25)
	qnet, err := RandomQuasiNetwork(qc, NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	if qnet.Graph.NumNodes() != 25 {
		t.Fatal("quasi network wrong size")
	}
	qconn, err := RandomQuasiConnectedNetwork(PaperQuasiNetworkConfig(40), NewRNG(37), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !qconn.Graph.IsConnected() {
		t.Fatal("quasi connected sampler returned disconnected graph")
	}

	r, err := RunAsync(qconn.Graph, DefaultAsyncConfig(ID, 41), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violation != nil {
		t.Fatalf("ID async run violated CDS: %v", r.Violation)
	}
}

func TestFacadeDistributedSim(t *testing.T) {
	cfg := PaperSimConfig(15, ND, ConstantPerGWDrain{}, 7)
	cfg.Verify = true
	dm, err := RunSimDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Intervals <= 0 || dm.Messages == 0 || dm.Mismatches != 0 {
		t.Fatalf("metrics = %+v", dm)
	}
}

func TestFacadeAnalyzeCDS(t *testing.T) {
	g := FromEdges(5, [][2]NodeID{{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3}})
	res, err := Compute(g, ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeCDS(g, res.Gateway)
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid != nil || report.Gateways != 2 {
		t.Fatalf("report = %+v", report)
	}
}

func TestFacadeChurn(t *testing.T) {
	cfg := ChurnSimConfig{
		Config:  PaperSimConfig(15, ND, ConstantPerGWDrain{}, 3),
		OffProb: 0.2,
		OnProb:  0.5,
	}
	m, err := RunSimChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Intervals <= 0 || m.MeanOn <= 0 || m.MeanOn > 15 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFacadeDistanceVector(t *testing.T) {
	g := FromEdges(7, [][2]NodeID{{0, 2}, {1, 2}, {2, 5}, {3, 5}, {4, 5}, {6, 5}})
	gw := []bool{false, false, true, false, false, true, false}
	dv, stats, err := BuildTablesDistanceVector(g, gw)
	if err != nil {
		t.Fatal(err)
	}
	if len(dv) != 2 || dv[0][1] != 1 || stats.Messages == 0 {
		t.Fatalf("dv=%v stats=%+v", dv, stats)
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	// 0-1-2-3 path: {1, 2} is the CDS, {0} is neither dominating nor
	// connected-covering.
	g := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}})
	cases := []struct {
		name    string
		do      func() error
		wantSub string
	}{
		{"PolicyByName unknown", func() error {
			_, err := PolicyByName("EL3")
			return err
		}, "unknown policy"},
		{"PolicyByName wrong case", func() error {
			_, err := PolicyByName("el1")
			return err
		}, "unknown policy"},
		{"PolicyByName empty", func() error {
			_, err := PolicyByName("")
			return err
		}, "unknown policy"},
		{"Compute EL1 nil energy", func() error {
			_, err := Compute(g, EL1, nil)
			return err
		}, "needs energy"},
		{"Compute EL2 nil energy", func() error {
			_, err := Compute(g, EL2, nil)
			return err
		}, "needs energy"},
		{"Compute EL1 empty energy", func() error {
			_, err := Compute(g, EL1, []float64{})
			return err
		}, "needs energy"},
		{"Compute EL2 short energy", func() error {
			_, err := Compute(g, EL2, []float64{1, 2})
			return err
		}, "needs energy"},
		{"VerifyCDS non-dominating", func() error {
			return VerifyCDS(g, []bool{true, false, false, false})
		}, "not dominated"},
		{"VerifyCDS empty set", func() error {
			return VerifyCDS(g, []bool{false, false, false, false})
		}, "not dominated"},
		{"VerifyCDS wrong length", func() error {
			return VerifyCDS(g, []bool{true})
		}, "entries"},
		{"VerifyCDS disconnected backbone", func() error {
			// 0 and 3 dominate everything but are not adjacent.
			return VerifyCDS(g, []bool{true, false, false, true})
		}, "disconnected"},
		{"DrainByName unknown", func() error {
			_, err := DrainByName("cubic")
			return err
		}, "unknown"},
	}
	for _, tc := range cases {
		err := tc.do()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}

	// Nil energy is valid for topology-keyed policies — guard against
	// over-tightening.
	for _, p := range []Policy{NR, ID, ND} {
		if _, err := Compute(g, p, nil); err != nil {
			t.Errorf("Compute(%v, nil energy) = %v, want success", p, err)
		}
	}
}

func TestFacadeServing(t *testing.T) {
	srv := NewCDSServer(ServerConfig{Workers: 2})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := NewCDSClient(hs.URL, hs.Client())

	g := FromEdges(5, [][2]NodeID{{0, 1}, {0, 4}, {1, 2}, {1, 4}, {2, 3}})
	spec := ServerGraphSpec{Nodes: 5}
	g.Edges(func(u, v NodeID) { spec.Edges = append(spec.Edges, [2]int{int(u), int(v)}) })

	resp, err := client.Compute(context.Background(), ServerComputeRequest{Graph: spec, Policy: "ID"})
	if err != nil {
		t.Fatal(err)
	}
	want := MustComputeGateways(t, g)
	if resp.NumGateways != want {
		t.Fatalf("served %d gateways, library computed %d", resp.NumGateways, want)
	}
	again, err := client.Compute(context.Background(), ServerComputeRequest{Graph: spec, Policy: "ID"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeated request not cached")
	}
	if GraphDigest(g) != GraphDigest(g.Clone()) {
		t.Fatal("digest unstable across clone")
	}
	if len(CanonicalGraph(g)) == 0 {
		t.Fatal("empty canonical encoding")
	}
}

// MustComputeGateways is a test helper returning the ID-policy gateway
// count.
func MustComputeGateways(t *testing.T, g *Graph) int {
	t.Helper()
	res, err := Compute(g, ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.NumGateways()
}

func TestFacadeHardened(t *testing.T) {
	net, err := RandomConnectedNetwork(PaperNetworkConfig(20), NewRNG(3), 2000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewFaultPlan(FaultConfig{
		Seed: 5, Drop: 0.1,
		Crashes: []Crash{{Node: 2, AtRound: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDistributedHardened(net.Graph, ND, nil, HardenedConfig{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive[2] {
		t.Fatal("crashed host alive")
	}
	if err := VerifySurvivorCDS(net.Graph, res.Alive, res.Gateway); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retransmissions == 0 {
		t.Fatal("no retransmissions at drop=0.1")
	}
}
